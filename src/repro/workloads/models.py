"""Miniature versions of the paper's model architectures (Table 3).

These models keep the *architectural family* of the originals — SqueezeNet's
fire modules, ResNet's residual blocks, RoBERTa's transformer encoder,
Jasper's stacked convolutions, an attention-equipped recurrent translator —
at a few thousand parameters each, so the live experiments train in seconds
while exercising the same kinds of state (conv kernels, batch-norm buffers,
embeddings, attention projections, recurrent cells) that Flor checkpoints.
"""

from __future__ import annotations

import numpy as np

from .. import torchlike as tl
from ..torchlike import functional as F

__all__ = ["MiniSqueezeNet", "MiniResNet", "MiniRoBERTa",
           "MiniRoBERTaClassifier", "MiniJasper", "MiniRNNTranslator",
           "build_model_for"]


class MiniSqueezeNet(tl.Module):
    """SqueezeNet-style classifier: a stem convolution plus fire modules."""

    def __init__(self, num_classes: int = 4, in_channels: int = 3,
                 width: int = 16, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.stem = tl.Conv2d(in_channels, width, 3, stride=2, padding=1, rng=rng)
        self.fire1 = tl.FireModule(width, width // 2, width, rng=rng)
        self.fire2 = tl.FireModule(2 * width, width // 2, width, rng=rng)
        self.pool = tl.MaxPool2d(2)
        self.head = tl.Conv2d(2 * width, num_classes, 1, rng=rng)
        self.global_pool = tl.GlobalAvgPool2d()

    def forward(self, x: tl.Tensor) -> tl.Tensor:
        out = self.stem(x).relu()
        out = self.fire1(out)
        out = self.pool(out)
        out = self.fire2(out)
        out = self.head(out)
        return self.global_pool(out)


class MiniResNet(tl.Module):
    """ResNet-style classifier: stem, two residual stages, linear head."""

    def __init__(self, num_classes: int = 4, in_channels: int = 3,
                 width: int = 16, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.stem = tl.Conv2d(in_channels, width, 3, padding=1, rng=rng)
        self.bn = tl.BatchNorm2d(width)
        self.stage1 = tl.ResidualBlock(width, width, rng=rng)
        self.stage2 = tl.ResidualBlock(width, 2 * width, stride=2, rng=rng)
        self.global_pool = tl.GlobalAvgPool2d()
        self.head = tl.Linear(2 * width, num_classes, rng=rng)

    def forward(self, x: tl.Tensor) -> tl.Tensor:
        out = self.bn(self.stem(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        return self.head(self.global_pool(out))


class MiniRoBERTa(tl.Module):
    """RoBERTa-style transformer encoder producing per-token representations."""

    def __init__(self, vocab_size: int = 50, d_model: int = 32,
                 num_heads: int = 4, num_layers: int = 2, max_len: int = 64,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.d_model = d_model
        self.token_embedding = tl.Embedding(vocab_size, d_model, rng=rng)
        self.position_embedding = tl.Embedding(max_len, d_model, rng=rng)
        self.layers = tl.Sequential(*[
            tl.TransformerEncoderLayer(d_model, num_heads, 2 * d_model, rng=rng)
            for _ in range(num_layers)])
        self.norm = tl.LayerNorm(d_model)

    def forward(self, token_ids) -> tl.Tensor:
        if isinstance(token_ids, tl.Tensor):
            token_ids = token_ids.data
        token_ids = np.asarray(token_ids, dtype=np.int64)
        seq_len = token_ids.shape[1]
        positions = np.arange(seq_len, dtype=np.int64)[None, :].repeat(
            token_ids.shape[0], axis=0)
        hidden = self.token_embedding(token_ids) + self.position_embedding(positions)
        hidden = self.layers(hidden)
        return self.norm(hidden)


class MiniRoBERTaClassifier(tl.Module):
    """Sequence classifier: MiniRoBERTa encoder + mean-pool + linear head.

    The fine-tuning workloads (RTE, CoLA) freeze the encoder and only train
    the head, which is what makes their checkpoints large relative to their
    per-epoch compute — the property adaptive checkpointing reacts to.
    """

    def __init__(self, num_classes: int = 2, vocab_size: int = 50,
                 d_model: int = 32, freeze_encoder: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.encoder = MiniRoBERTa(vocab_size=vocab_size, d_model=d_model, rng=rng)
        self.head = tl.Linear(d_model, num_classes, rng=rng)
        self.frozen_encoder = freeze_encoder
        if freeze_encoder:
            for parameter in self.encoder.parameters():
                parameter.requires_grad = False

    def trainable_parameters(self):
        """Parameters the optimizer should update (respects freezing)."""
        return [p for p in self.parameters() if p.requires_grad]

    def forward(self, token_ids) -> tl.Tensor:
        hidden = self.encoder(token_ids)
        pooled = hidden.mean(axis=1)
        return self.head(pooled)


class MiniJasper(tl.Module):
    """Jasper-style acoustic model: stacked convolutions over spectrograms."""

    def __init__(self, num_classes: int = 4, width: int = 16,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.block1 = tl.Sequential(
            tl.Conv2d(1, width, 3, padding=1, rng=rng),
            tl.BatchNorm2d(width), tl.ReLU())
        self.block2 = tl.Sequential(
            tl.Conv2d(width, width, 3, padding=1, rng=rng),
            tl.BatchNorm2d(width), tl.ReLU(), tl.MaxPool2d(2))
        self.global_pool = tl.GlobalAvgPool2d()
        self.head = tl.Linear(width, num_classes, rng=rng)

    def forward(self, x: tl.Tensor) -> tl.Tensor:
        out = self.block1(x)
        out = self.block2(out)
        return self.head(self.global_pool(out))


class MiniRNNTranslator(tl.Module):
    """Recurrent encoder-decoder with attention (the RNN-T-style workload)."""

    def __init__(self, vocab_size: int = 40, d_model: int = 16,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.embedding = tl.Embedding(vocab_size, d_model, rng=rng)
        self.encoder_cell = tl.LSTMCell(d_model, d_model, rng=rng)
        self.decoder_cell = tl.LSTMCell(d_model, d_model, rng=rng)
        self.attention_proj = tl.Linear(d_model, d_model, rng=rng)
        self.output = tl.Linear(2 * d_model, vocab_size, rng=rng)

    def forward(self, source_ids, target_len: int | None = None) -> tl.Tensor:
        if isinstance(source_ids, tl.Tensor):
            source_ids = source_ids.data
        source_ids = np.asarray(source_ids, dtype=np.int64)
        batch, seq_len = source_ids.shape
        target_len = target_len or seq_len

        embedded = self.embedding(source_ids)          # (batch, seq, d)
        encoder_states = []
        state = None
        for position in range(seq_len):
            hidden, cell = self.encoder_cell(embedded[:, position, :], state)
            state = (hidden, cell)
            encoder_states.append(hidden)
        memory = tl.stack(encoder_states, axis=1)       # (batch, seq, d)

        logits = []
        decoder_state = state
        decoder_input = hidden
        for _position in range(target_len):
            hidden, cell = self.decoder_cell(decoder_input, decoder_state)
            decoder_state = (hidden, cell)
            query = self.attention_proj(hidden).unsqueeze(1)   # (batch, 1, d)
            context = F.scaled_dot_product_attention(query, memory, memory)
            context = context.reshape(batch, self.d_model)
            combined = tl.cat([hidden, context], axis=1)
            logits.append(self.output(combined))
            decoder_input = hidden
        return tl.stack(logits, axis=1)                  # (batch, tgt, vocab)


def build_model_for(workload_name: str, rng: np.random.Generator | None = None
                    ) -> tl.Module:
    """Construct the miniature model matching a Table 3 workload name."""
    rng = rng if rng is not None else np.random.default_rng(0)
    name = workload_name.lower()
    if name in ("cifr", "imgn"):
        return MiniSqueezeNet(rng=rng)
    if name == "rsnt":
        return MiniResNet(rng=rng)
    if name in ("rte", "cola"):
        return MiniRoBERTaClassifier(freeze_encoder=True, rng=rng)
    if name == "wiki":
        return MiniRoBERTaClassifier(freeze_encoder=False, rng=rng)
    if name == "jasp":
        return MiniJasper(rng=rng)
    if name == "rnnt":
        return MiniRNNTranslator(rng=rng)
    raise ValueError(f"no miniature model for workload {workload_name!r}")
