"""Streaming/continual record: unbounded epochs under a retention budget.

The second new workload family: a continual-learning job that trains on an
endless stream of data batches.  There is no final epoch to wait for, so
"keep every checkpoint" is not a policy — the run would grow without bound.
Instead a :class:`~repro.storage.lifecycle.RetentionPolicy` is
*load-bearing*: record proceeds while retention prune + payload GC run
periodically on the async spool's background workers
(``FlorConfig.gc_interval`` → :class:`LifecycleManager.on_manifest_commit`),
keeping the run's storage footprint bounded by policy rather than by epoch
count.  Replay of the surviving window stays correct by construction — the
scheduler derives restorable iterations from the manifest, so pruned
executions simply vanish from the aligned set.

:func:`build_streaming_script` renders one such continual trainer (a
bounded ``max_iterations`` stands in for "unbounded" so tests terminate);
:func:`run_streaming_record` records it under a retention-active config
and reports both the training outcome and what lifecycle did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..config import FlorConfig, get_config
from ..exceptions import WorkloadError
from ..storage.lifecycle import RetentionPolicy
from .registry import get_workload

__all__ = ["StreamingRecordResult", "DEFAULT_STREAMING_POLICY",
           "build_streaming_script", "run_streaming_record"]


#: A continual run keeps a sliding window of recent checkpoints per block.
DEFAULT_STREAMING_POLICY = RetentionPolicy(keep_last_n=8)


_STREAMING_SCRIPT_TEMPLATE = '''\
"""Miniature {name} continual trainer ({task}; streaming record)."""
import numpy as np
from repro import api as flor
from repro import torchlike as tl
from repro.workloads.training import dataset_for, make_training_setup

setup = make_training_setup({name!r}, seed={seed})
net = setup.net
optimizer = setup.optimizer
criterion = setup.criterion
base = dataset_for(setup.spec, seed={seed})

BATCH = setup.spec.mini_batch_size

for step in range({max_iterations}):
    # Each step trains on a fresh window of the stream: rotating slices of
    # the synthetic dataset stand in for never-before-seen batches.  The
    # nested micro-batch loop is the SkipBlock the instrumenter wraps, so
    # every step produces checkpoint traffic for retention to prune.
    for micro in range({micro_batches}):
        offset = ((step * {micro_batches} + micro) * BATCH) % len(base)
        indices = [(offset + j) % len(base) for j in range(BATCH)]
        inputs = np.stack([base[j][0] for j in indices])
        targets = np.stack([base[j][1] for j in indices])
        logits = net({forward})
        loss = criterion(logits, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    flor.log("stream_loss", loss.item())
'''


def build_streaming_script(workload_name: str, max_iterations: int = 64,
                           seed: int = 0, micro_batches: int = 2) -> str:
    """Source text of a continual trainer over a synthetic data stream.

    The main loop is per-*step* (a few fresh micro-batches each), not
    per-epoch: checkpoint traffic is proportional to stream length, which
    is what makes retention load-bearing.  ``max_iterations`` bounds the
    stream so tests and benchmarks terminate; a production continual job
    would loop forever.
    """
    if max_iterations < 1:
        raise WorkloadError(
            f"max_iterations must be >= 1, got {max_iterations}")
    if micro_batches < 1:
        raise WorkloadError(f"micro_batches must be >= 1, got {micro_batches}")
    spec = get_workload(workload_name)
    wrap_inputs = spec.name.lower() in ("cifr", "rsnt", "imgn", "jasp")
    forward = "tl.Tensor(inputs)" if wrap_inputs else "inputs"
    return _STREAMING_SCRIPT_TEMPLATE.format(
        name=spec.name, task=spec.task, seed=seed,
        max_iterations=max_iterations, micro_batches=micro_batches,
        forward=forward)


@dataclass
class StreamingRecordResult:
    """Outcome of one streaming record: training result + lifecycle ledger."""

    run_id: str
    run_dir: Path
    iterations: int
    wall_seconds: float
    checkpoint_count: int  # manifest rows SURVIVING retention at close
    stored_nbytes: int
    lifecycle: dict = field(default_factory=dict)

    @property
    def lifecycle_passes(self) -> int:
        """Background + close-time prune/GC passes that ran during record."""
        return int(self.lifecycle.get("passes", 0))


def run_streaming_record(workload_name: str = "cifr",
                         max_iterations: int = 64, seed: int = 0,
                         micro_batches: int = 2,
                         policy: RetentionPolicy | None = None,
                         gc_interval: float | None = 0.05,
                         config: FlorConfig | None = None
                         ) -> StreamingRecordResult:
    """Record a continual trainer with retention pruning live on the spool.

    Forces the config into the streaming shape: spool materialization (the
    only strategy with a background hook for lifecycle passes), an active
    retention ``policy`` (default: keep the last 8 checkpoints per block),
    and a ``gc_interval`` short enough that prune/GC genuinely overlap the
    recording — the crash-ordering guarantees (manifest-first prune,
    payload-last GC) are exercised *while* the writer is hot, not after it
    quiesced.  Pass ``gc_interval=None`` to prune only at session close.
    """
    from ..record.recorder import record_source

    config = config or get_config()
    policy = (policy if policy is not None
              else DEFAULT_STREAMING_POLICY).validate()
    config = config.with_overrides(
        background_materialization="spool",
        retention_policy=policy,
        gc_interval=gc_interval)

    source = build_streaming_script(workload_name,
                                    max_iterations=max_iterations, seed=seed,
                                    micro_batches=micro_batches)
    start = time.perf_counter()
    recorded = record_source(source, name=f"{workload_name}-stream",
                             config=config)
    wall_seconds = time.perf_counter() - start

    from ..storage.checkpoint_store import CheckpointStore
    store = CheckpointStore(recorded.run_dir)
    try:
        lifecycle = store.get_metadata("lifecycle") or {}
        surviving = store.checkpoint_count()
        stored = store.total_stored_nbytes()
    finally:
        store.close()
    return StreamingRecordResult(
        run_id=recorded.run_id,
        run_dir=recorded.run_dir,
        iterations=max_iterations,
        wall_seconds=wall_seconds,
        checkpoint_count=surviving,
        stored_nbytes=stored,
        lifecycle=lifecycle,
    )
