"""Module and Parameter abstractions (the ``torch.nn.Module`` analogue).

Modules are containers of :class:`Parameter` tensors and nested sub-modules.
They provide the ``state_dict`` / ``load_state_dict`` protocol that Flor's
lean checkpointing relies on: a Loop End Checkpoint of a model is its state
dict, and restoring a checkpoint loads that dict back into the live object.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a Module."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` objects and other :class:`Module`
    instances as attributes; ``parameters()``, ``state_dict()`` and friends
    discover them automatically, in attribute-assignment order.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that belongs in the state dict."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return sum(int(p.size) for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Training state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialization (the interface lean checkpointing uses)
    # ------------------------------------------------------------------ #
    def state_dict(self, prefix: str = "") -> "OrderedDict[str, np.ndarray]":
        """Return a flat mapping of parameter/buffer names to array copies."""
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buffer in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(buffer, copy=True)
        for mod_name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{mod_name}."))
        return state

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Load arrays from ``state`` into this module tree, in place."""
        own_keys = set()
        for name, param in self.named_parameters():
            own_keys.add(name)
            if name in state:
                value = np.asarray(state[name], dtype=np.float32)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: checkpoint has "
                        f"{value.shape}, module expects {param.data.shape}")
                param.data[...] = value
        for name, buffer in self.named_buffers():
            own_keys.add(name)
            if name in state:
                buffer[...] = np.asarray(state[name], dtype=np.float32)
        if strict:
            missing = own_keys - set(state)
            unexpected = set(state) - own_keys
            if missing or unexpected:
                raise KeyError(
                    f"state dict mismatch: missing={sorted(missing)} "
                    f"unexpected={sorted(unexpected)}")

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
