"""Saving and loading model / optimizer state (the ``torch.save`` analogue).

Flor's checkpoint store ultimately persists *state dicts* produced here, so
this module also reports payload sizes, which feed the storage-cost model
(Table 4) and the adaptive-checkpointing controller.
"""

from __future__ import annotations

import io
import pickle
from pathlib import Path

import numpy as np

from ..exceptions import SerializationError
from .module import Module
from .optim import LRScheduler, Optimizer

__all__ = ["save", "load", "state_nbytes", "snapshot_training_state",
           "restore_training_state"]


def save(obj, path: str | Path) -> int:
    """Pickle ``obj`` to ``path``; return the number of bytes written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pragma: no cover - defensive
        raise SerializationError(f"cannot serialize object to {path}: {exc}") from exc
    path.write_bytes(payload)
    return len(payload)


def load(path: str | Path):
    """Load an object previously written by :func:`save`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no saved object at {path}")
    with open(path, "rb") as handle:
        return pickle.load(handle)


def state_nbytes(state: dict) -> int:
    """Approximate in-memory size of a state dict, in bytes."""
    total = 0
    for value in state.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, dict):
            total += state_nbytes(value)
        elif isinstance(value, (list, tuple)):
            total += sum(v.nbytes if isinstance(v, np.ndarray) else 64 for v in value)
        else:
            total += 64
    return total


def snapshot_training_state(model: Module | None = None,
                            optimizer: Optimizer | None = None,
                            scheduler: LRScheduler | None = None,
                            extra: dict | None = None) -> dict:
    """Build a picklable snapshot of the canonical training-state triple.

    This is the payload of a Loop End Checkpoint when lean checkpointing
    determines the training loop's changeset is {optimizer, model} (the
    worked example in Section 5.2.1).
    """
    snapshot: dict = {}
    if model is not None:
        snapshot["model"] = model.state_dict()
    if optimizer is not None:
        snapshot["optimizer"] = optimizer.state_dict()
    if scheduler is not None:
        snapshot["scheduler"] = scheduler.state_dict()
    if extra:
        snapshot["extra"] = dict(extra)
    return snapshot


def restore_training_state(snapshot: dict, model: Module | None = None,
                           optimizer: Optimizer | None = None,
                           scheduler: LRScheduler | None = None) -> dict:
    """Apply a snapshot produced by :func:`snapshot_training_state` in place.

    Returns the ``extra`` mapping (empty dict when absent) so callers can
    restore loose Python values themselves.
    """
    if model is not None and "model" in snapshot:
        model.load_state_dict(snapshot["model"])
    if optimizer is not None and "optimizer" in snapshot:
        optimizer.load_state_dict(snapshot["optimizer"])
    if scheduler is not None and "scheduler" in snapshot:
        scheduler.load_state_dict(snapshot["scheduler"])
    return dict(snapshot.get("extra", {}))


def serialize_to_bytes(obj) -> bytes:
    """Pickle ``obj`` to an in-memory byte string."""
    buffer = io.BytesIO()
    try:
        pickle.dump(obj, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SerializationError(f"cannot serialize object: {exc}") from exc
    return buffer.getvalue()
