"""Functional neural-network operations built on :class:`~repro.torchlike.tensor.Tensor`.

These are the stateless counterparts of the layers in
:mod:`repro.torchlike.layers`.  Convolution uses an im2col lowering so the
heavy lifting is a single matrix multiply, which keeps the miniature
workloads fast enough for tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear", "relu", "gelu", "sigmoid", "tanh", "softmax", "log_softmax",
    "dropout", "embedding", "one_hot", "conv2d", "max_pool2d", "avg_pool2d",
    "batch_norm", "layer_norm", "scaled_dot_product_attention",
]


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``y = x @ weight.T + bias`` — the affine map used by ``Linear``."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as used by RoBERTa)."""
    inner = (x + x * x * x * 0.044715) * 0.7978845608028654
    return x * 0.5 * (inner.tanh() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.log_softmax(axis=axis)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: activations are scaled by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        return x * 0.0
    generator = rng if rng is not None else np.random.default_rng()
    mask = (generator.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)


def one_hot(indices: np.ndarray, num_classes: int) -> Tensor:
    """Return a float one-hot encoding of integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((*indices.shape, num_classes), dtype=np.float32)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return Tensor(out)


def embedding(indices: np.ndarray, weight: Tensor) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices`` (differentiable)."""
    if isinstance(indices, Tensor):
        indices = indices.data
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


# ---------------------------------------------------------------------- #
# Convolution and pooling via im2col
# ---------------------------------------------------------------------- #
def _im2col(x: np.ndarray, kernel: int, stride: int, padding: int):
    batch, channels, height, width = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kernel) // stride + 1
    out_w = (x.shape[3] - kernel) // stride + 1
    strides = x.strides
    shape = (batch, channels, out_h, out_w, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(strides[0], strides[1], strides[2] * stride,
                 strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel * kernel)
    return cols, out_h, out_w


def _col2im(cols: np.ndarray, x_shape, kernel: int, stride: int, padding: int):
    batch, channels, height, width = x_shape
    padded_h, padded_w = height + 2 * padding, width + 2 * padding
    out_h = (padded_h - kernel) // stride + 1
    out_w = (padded_w - kernel) // stride + 1
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    x_padded = np.zeros((batch, channels, padded_h, padded_w), dtype=np.float32)
    for i in range(kernel):
        for j in range(kernel):
            x_padded[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += \
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    if padding:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over NCHW input with a square kernel."""
    batch, in_channels, _, _ = x.shape
    out_channels, _, kernel, _ = weight.shape
    cols, out_h, out_w = _im2col(x.data, kernel, stride, padding)
    w_flat = weight.data.reshape(out_channels, -1)
    out_data = cols @ w_flat.T
    out_data = out_data.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    requires = x.requires_grad or weight.requires_grad or (
        bias is not None and bias.requires_grad)
    parents = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor(out_data, requires_grad=requires, _parents=parents, _op="conv2d")
    if out.requires_grad:
        def _backward(grad):
            grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
            if weight.requires_grad:
                grad_w = (grad_flat.T @ cols).reshape(weight.shape)
                weight._accumulate(grad_w.astype(np.float32))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)).astype(np.float32))
            if x.requires_grad:
                grad_cols = grad_flat @ w_flat
                grad_x = _col2im(grad_cols, x.shape, kernel, stride, padding)
                x._accumulate(grad_x.astype(np.float32))
        out._backward = _backward
    return out


def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over NCHW input."""
    stride = stride if stride is not None else kernel
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    strides = x.data.strides
    view = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1], strides[2] * stride,
                 strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    out_data = view.max(axis=(4, 5))
    out = Tensor(out_data, requires_grad=x.requires_grad, _parents=(x,), _op="max_pool2d")
    if out.requires_grad:
        def _backward(grad):
            grad_x = np.zeros_like(x.data, dtype=np.float32)
            for i in range(kernel):
                for j in range(kernel):
                    window = x.data[:, :, i:i + stride * out_h:stride,
                                    j:j + stride * out_w:stride]
                    mask = (window == out_data)
                    grad_x[:, :, i:i + stride * out_h:stride,
                           j:j + stride * out_w:stride] += mask * grad
            x._accumulate(grad_x)
        out._backward = _backward
    return out


def avg_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over NCHW input."""
    stride = stride if stride is not None else kernel
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    strides = x.data.strides
    view = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1], strides[2] * stride,
                 strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    out_data = view.mean(axis=(4, 5))
    out = Tensor(out_data, requires_grad=x.requires_grad, _parents=(x,), _op="avg_pool2d")
    if out.requires_grad:
        scale = 1.0 / (kernel * kernel)

        def _backward(grad):
            grad_x = np.zeros_like(x.data, dtype=np.float32)
            for i in range(kernel):
                for j in range(kernel):
                    grad_x[:, :, i:i + stride * out_h:stride,
                           j:j + stride * out_w:stride] += grad * scale
            x._accumulate(grad_x)
        out._backward = _backward
    return out


# ---------------------------------------------------------------------- #
# Normalization
# ---------------------------------------------------------------------- #
def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool = True, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalization for 2-D ``(N, C)`` or 4-D ``(N, C, H, W)`` input.

    ``running_mean`` / ``running_var`` are plain ndarrays updated in place
    at training time (they are buffers, not parameters).
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        param_shape = (1, -1, 1, 1)
    else:
        axes = (0,)
        param_shape = (1, -1)

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        running_var *= (1.0 - momentum)
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var

    mean_t = Tensor(mean.reshape(param_shape))
    std_t = Tensor(np.sqrt(var + eps).reshape(param_shape))
    normalized = (x - mean_t) / std_t
    return normalized * gamma.reshape(*param_shape) + beta.reshape(*param_shape)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalized = (x - mean) / (var + eps).sqrt()
    return normalized * gamma + beta


def scaled_dot_product_attention(query: Tensor, key: Tensor, value: Tensor,
                                 mask: np.ndarray | None = None) -> Tensor:
    """Attention(Q, K, V) = softmax(QK^T / sqrt(d)) V.

    ``query``/``key``/``value`` have shape ``(..., seq, d)``; ``mask`` is an
    optional additive mask broadcastable to ``(..., seq, seq)`` with ``-inf``
    (or a large negative number) at disallowed positions.
    """
    d_model = query.shape[-1]
    scores = query @ key.swapaxes(-1, -2) * (1.0 / float(np.sqrt(d_model)))
    if mask is not None:
        scores = scores + Tensor(mask.astype(np.float32))
    weights = scores.softmax(axis=-1)
    return weights @ value
