"""Neural-network layers for the torchlike substrate.

The layer set is chosen to cover the architectures in the paper's Table 3:
convolutional classifiers (SqueezeNet / ResNet style), transformer encoders
(RoBERTa style), recurrent models with attention (RNN-T style) and simple
convolutional acoustic models (Jasper style) — all in miniature.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, cat

__all__ = [
    "Linear", "Conv2d", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d",
    "BatchNorm1d", "BatchNorm2d", "LayerNorm", "Dropout", "Embedding",
    "ReLU", "GELU", "Tanh", "Sigmoid", "Flatten", "Sequential", "Identity",
    "LSTMCell", "MultiHeadSelfAttention", "TransformerEncoderLayer",
    "ResidualBlock", "FireModule",
]


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else init.seeded_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features, rng))
        self.bias = Parameter(init.zeros_((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution with a square kernel over NCHW input."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else init.seeded_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(init.kaiming_uniform(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng))
        self.bias = Parameter(init.zeros_((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride})")


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions, producing ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class BatchNorm2d(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(init.ones_((num_features,)))
        self.bias = Parameter(init.zeros_((num_features,)))
        self.register_buffer("running_mean", init.zeros_((num_features,)))
        self.register_buffer("running_var", init.ones_((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.weight, self.bias, self.running_mean,
                            self.running_var, training=self.training,
                            momentum=self.momentum, eps=self.eps)


class BatchNorm1d(BatchNorm2d):
    """Batch normalization over ``(N, C)`` input (shares the 2-D machinery)."""


class LayerNorm(Module):
    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones_((normalized_shape,)))
        self.bias = Parameter(init.zeros_((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self._rng = rng if rng is not None else init.seeded_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self._rng)


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else init.seeded_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal_((num_embeddings, embedding_dim),
                                             std=0.02, rng=rng))

    def forward(self, indices) -> Tensor:
        return F.embedding(indices, self.weight)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """A container that applies child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)


class LSTMCell(Module):
    """A single LSTM cell (used by the RNN-T-style translation workload)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else init.seeded_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform(
            (4 * hidden_size, input_size), input_size, 4 * hidden_size, rng))
        self.weight_hh = Parameter(init.xavier_uniform(
            (4 * hidden_size, hidden_size), hidden_size, 4 * hidden_size, rng))
        self.bias = Parameter(init.zeros_((4 * hidden_size,)))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
                ) -> tuple[Tensor, Tensor]:
        batch = x.shape[0]
        if state is None:
            hidden = Tensor(np.zeros((batch, self.hidden_size), dtype=np.float32))
            cell = Tensor(np.zeros((batch, self.hidden_size), dtype=np.float32))
        else:
            hidden, cell = state
        gates = F.linear(x, self.weight_ih) + F.linear(hidden, self.weight_hh) + self.bias
        hs = self.hidden_size
        input_gate = gates[:, 0 * hs:1 * hs].sigmoid()
        forget_gate = gates[:, 1 * hs:2 * hs].sigmoid()
        cell_gate = gates[:, 2 * hs:3 * hs].tanh()
        output_gate = gates[:, 3 * hs:4 * hs].sigmoid()
        new_cell = forget_gate * cell + input_gate * cell_gate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention over ``(batch, seq, d_model)`` input."""

    def __init__(self, d_model: int, num_heads: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by "
                             f"num_heads={num_heads}")
        rng = rng if rng is not None else init.seeded_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, seq, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * dim)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        query = self._split_heads(self.q_proj(x))
        key = self._split_heads(self.k_proj(x))
        value = self._split_heads(self.v_proj(x))
        attended = F.scaled_dot_product_attention(query, key, value, mask=mask)
        return self.out_proj(self._merge_heads(attended))


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block (attention + feed-forward)."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else init.seeded_rng()
        self.attention = MultiHeadSelfAttention(d_model, num_heads, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.ff = Sequential(
            Linear(d_model, d_ff, rng=rng),
            GELU(),
            Linear(d_ff, d_model, rng=rng),
        )
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = x + self.dropout(self.attention(self.norm1(x), mask=mask))
        x = x + self.dropout(self.ff(self.norm2(x)))
        return x


class ResidualBlock(Module):
    """Basic residual block: two 3x3 convolutions with an identity shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else init.seeded_rng()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride,
                            padding=1, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1,
                            padding=1, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class FireModule(Module):
    """SqueezeNet fire module: squeeze 1x1 then expand with 1x1 and 3x3."""

    def __init__(self, in_channels: int, squeeze_channels: int,
                 expand_channels: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else init.seeded_rng()
        self.squeeze = Conv2d(in_channels, squeeze_channels, 1, rng=rng)
        self.expand1x1 = Conv2d(squeeze_channels, expand_channels, 1, rng=rng)
        self.expand3x3 = Conv2d(squeeze_channels, expand_channels, 3, padding=1,
                                rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        squeezed = self.squeeze(x).relu()
        return cat([self.expand1x1(squeezed).relu(),
                    self.expand3x3(squeezed).relu()], axis=1)
