"""A small reverse-mode autograd engine over NumPy arrays.

This module is the foundation of ``repro.torchlike``, the PyTorch-like
substrate the Flor reproduction trains against.  The paper's mechanisms only
depend on the *shape* of PyTorch training code — tensors flowing through
modules, an optimizer mutating parameters in-place, ``state_dict``-style
serialization — so the substrate reproduces exactly those interfaces.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` and, when ``requires_grad`` is
  set, remembers the operation that produced it so gradients can flow
  backwards through the graph.
* Gradients accumulate into ``Tensor.grad`` (a plain ndarray), matching the
  PyTorch convention that ``backward()`` adds rather than overwrites.
* Broadcasting is supported for elementwise binary ops; gradients are
  "unbroadcast" by summing over the broadcast axes.
* ``no_grad()`` suspends graph construction; it is used by evaluation loops
  and by the optimizers (parameter updates are not part of the graph).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones",
           "randn", "rand", "arange", "empty", "full", "stack", "cat"]


_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient graph construction."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False, _parents: tuple = (),
                 _op: str = "", dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype if dtype is not None else None)
        if self.data.dtype == np.float64:
            self.data = self.data.astype(np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = _parents if self.requires_grad else ()
        self._op = _op

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def item(self) -> float:
        return float(self.data.item())

    def __float__(self) -> float:
        return float(self.data.item())

    def __int__(self) -> int:
        return int(self.data.item())

    def __bool__(self) -> bool:
        return bool(self.data.item())

    # Pickling / deep-copying a tensor drops its autograd graph (the graph
    # holds closures and is meaningless outside the process that built it).
    # This mirrors how checkpoints store values, not computation history.
    def __getstate__(self) -> dict:
        return {"data": self.data, "requires_grad": self.requires_grad,
                "grad": self.grad}

    def __setstate__(self, state: dict) -> None:
        self.data = state["data"]
        self.requires_grad = state["requires_grad"]
        self.grad = state["grad"]
        self._backward = None
        self._parents = ()
        self._op = ""

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def tolist(self):
        return self.data.tolist()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad,
                     _parents=(self,), _op="clone")
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad)
            out._backward = _backward
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=np.float32)
        self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Autograd driver
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate gradients from this tensor through the graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not "
                               "require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar "
                                   "tensors")
            grad = np.ones_like(self.data, dtype=np.float32)
        else:
            grad = np.asarray(grad, dtype=np.float32)

        # Topological order over the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def _binary_op(self, other, forward, backward_self, backward_other, op):
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = forward(self.data, other_t.data)
        requires = self.requires_grad or other_t.requires_grad
        out = Tensor(out_data, requires_grad=requires,
                     _parents=(self, other_t), _op=op)
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(
                        _unbroadcast(backward_self(grad, self.data, other_t.data),
                                     self.data.shape))
                if other_t.requires_grad:
                    other_t._accumulate(
                        _unbroadcast(backward_other(grad, self.data, other_t.data),
                                     other_t.data.shape))
            out._backward = _backward
        return out

    def __add__(self, other):
        return self._binary_op(
            other, lambda a, b: a + b,
            lambda g, a, b: g, lambda g, a, b: g, "add")

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        return self._binary_op(
            other, lambda a, b: a - b,
            lambda g, a, b: g, lambda g, a, b: -g, "sub")

    def __rsub__(self, other):
        return Tensor(other).__sub__(self)

    def __mul__(self, other):
        return self._binary_op(
            other, lambda a, b: a * b,
            lambda g, a, b: g * b, lambda g, a, b: g * a, "mul")

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        return self._binary_op(
            other, lambda a, b: a / b,
            lambda g, a, b: g / b, lambda g, a, b: -g * a / (b * b), "div")

    def __rtruediv__(self, other):
        return Tensor(other).__truediv__(self)

    def __neg__(self):
        return self * -1.0

    def __pow__(self, exponent: float):
        exponent = float(exponent)
        out = Tensor(self.data ** exponent, requires_grad=self.requires_grad,
                     _parents=(self,), _op="pow")
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))
            out._backward = _backward
        return out

    # Comparison operators return plain (non-differentiable) tensors.
    def __gt__(self, other):
        return Tensor(self.data > _as_array(other))

    def __lt__(self, other):
        return Tensor(self.data < _as_array(other))

    def __ge__(self, other):
        return Tensor(self.data >= _as_array(other))

    def __le__(self, other):
        return Tensor(self.data <= _as_array(other))

    def __eq__(self, other):  # type: ignore[override]
        return Tensor(self.data == _as_array(other))

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------ #
    # Matrix multiplication
    # ------------------------------------------------------------------ #
    def __matmul__(self, other):
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data
        requires = self.requires_grad or other_t.requires_grad
        out = Tensor(out_data, requires_grad=requires,
                     _parents=(self, other_t), _op="matmul")
        if out.requires_grad:
            def _backward(grad):
                a, b = self.data, other_t.data
                if self.requires_grad:
                    if b.ndim == 1:
                        grad_a = np.outer(grad, b) if a.ndim == 2 else grad[..., None] * b
                    else:
                        grad_a = grad @ np.swapaxes(b, -1, -2)
                    self._accumulate(_unbroadcast(grad_a, a.shape))
                if other_t.requires_grad:
                    if a.ndim == 1:
                        grad_b = np.outer(a, grad)
                    else:
                        grad_b = np.swapaxes(a, -1, -2) @ grad
                    other_t._accumulate(_unbroadcast(grad_b, b.shape))
            out._backward = _backward
        return out

    def matmul(self, other):
        return self.__matmul__(other)

    # ------------------------------------------------------------------ #
    # Unary math
    # ------------------------------------------------------------------ #
    def _unary_op(self, forward, backward, op):
        out = Tensor(forward(self.data), requires_grad=self.requires_grad,
                     _parents=(self,), _op=op)
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(backward(grad, self.data, out.data))
            out._backward = _backward
        return out

    def exp(self):
        return self._unary_op(np.exp, lambda g, x, y: g * y, "exp")

    def log(self):
        return self._unary_op(np.log, lambda g, x, y: g / x, "log")

    def sqrt(self):
        return self._unary_op(np.sqrt, lambda g, x, y: g / (2.0 * y), "sqrt")

    def tanh(self):
        return self._unary_op(np.tanh, lambda g, x, y: g * (1.0 - y * y), "tanh")

    def sigmoid(self):
        return self._unary_op(lambda x: 1.0 / (1.0 + np.exp(-x)),
                              lambda g, x, y: g * y * (1.0 - y), "sigmoid")

    def relu(self):
        return self._unary_op(lambda x: np.maximum(x, 0.0),
                              lambda g, x, y: g * (x > 0), "relu")

    def abs(self):
        return self._unary_op(np.abs, lambda g, x, y: g * np.sign(x), "abs")

    def clip(self, low: float, high: float):
        out = Tensor(np.clip(self.data, low, high),
                     requires_grad=self.requires_grad, _parents=(self,), _op="clip")
        if out.requires_grad:
            def _backward(grad):
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad,
                     _parents=(self,), _op="sum")
        if out.requires_grad:
            def _backward(grad):
                grad = np.asarray(grad)
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(np.broadcast_to(grad, self.data.shape).astype(np.float32))
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False):
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad,
                     _parents=(self,), _op="max")
        if out.requires_grad:
            def _backward(grad):
                grad = np.asarray(grad)
                expanded = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded).astype(np.float32)
                mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(mask * grad)
            out._backward = _backward
        return out

    def min(self, axis=None, keepdims: bool = False):
        return (-(-self).max(axis=axis, keepdims=keepdims))

    def argmax(self, axis=None):
        return Tensor(np.argmax(self.data, axis=axis))

    def argmin(self, axis=None):
        return Tensor(np.argmin(self.data, axis=axis))

    def norm(self):
        """Frobenius (L2) norm as a scalar tensor."""
        return (self * self).sum().sqrt()

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape), requires_grad=self.requires_grad,
                     _parents=(self,), _op="reshape")
        if out.requires_grad:
            original = self.data.shape

            def _backward(grad):
                self._accumulate(grad.reshape(original))
            out._backward = _backward
        return out

    def view(self, *shape):
        return self.reshape(*shape)

    def flatten(self, start_dim: int = 0):
        shape = self.data.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = Tensor(self.data.transpose(axes), requires_grad=self.requires_grad,
                     _parents=(self,), _op="transpose")
        if out.requires_grad:
            inverse = tuple(np.argsort(axes))

            def _backward(grad):
                self._accumulate(grad.transpose(inverse))
            out._backward = _backward
        return out

    def swapaxes(self, axis1: int, axis2: int):
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index):
        if isinstance(index, Tensor):
            index = index.data
        out = Tensor(self.data[index], requires_grad=self.requires_grad,
                     _parents=(self,), _op="getitem")
        if out.requires_grad:
            def _backward(grad):
                full = np.zeros_like(self.data, dtype=np.float32)
                np.add.at(full, index, grad)
                self._accumulate(full)
            out._backward = _backward
        return out

    def unsqueeze(self, axis: int):
        return self.reshape(*self.data.shape[:axis], 1, *self.data.shape[axis:])

    def squeeze(self, axis: int | None = None):
        out_data = np.squeeze(self.data, axis=axis)
        return self.reshape(*out_data.shape)

    # ------------------------------------------------------------------ #
    # Softmax family (numerically stable, defined here for convenience)
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1):
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1):
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


# ---------------------------------------------------------------------- #
# Factory helpers (mirroring the torch namespace)
# ---------------------------------------------------------------------- #
def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def full(shape: Sequence[int], value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, value, dtype=np.float32),
                  requires_grad=requires_grad)


def empty(*shape, requires_grad: bool = False) -> Tensor:
    return zeros(*shape, requires_grad=requires_grad)


def randn(*shape, requires_grad: bool = False, rng: np.random.Generator | None = None) -> Tensor:
    generator = rng if rng is not None else np.random.default_rng()
    return Tensor(generator.standard_normal(shape).astype(np.float32),
                  requires_grad=requires_grad)


def rand(*shape, requires_grad: bool = False, rng: np.random.Generator | None = None) -> Tensor:
    generator = rng if rng is not None else np.random.default_rng()
    return Tensor(generator.random(shape).astype(np.float32),
                  requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=np.float32), requires_grad=requires_grad)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors), _op="stack")
    if out.requires_grad:
        def _backward(grad):
            pieces = np.split(grad, len(tensors), axis=axis)
            for piece, parent in zip(pieces, tensors):
                if parent.requires_grad:
                    parent._accumulate(np.squeeze(piece, axis=axis))
        out._backward = _backward
    return out


def cat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors), _op="cat")
    if out.requires_grad:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward(grad):
            for i, parent in enumerate(tensors):
                if parent.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(offsets[i], offsets[i + 1])
                    parent._accumulate(grad[tuple(slicer)])
        out._backward = _backward
    return out
