"""Loss functions for the torchlike substrate."""

from __future__ import annotations

import numpy as np

from .module import Module
from .tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "L1Loss", "NLLLoss",
           "cross_entropy", "mse_loss", "l1_loss", "nll_loss"]


def _as_index_array(target) -> np.ndarray:
    if isinstance(target, Tensor):
        target = target.data
    return np.asarray(target, dtype=np.int64)


def cross_entropy(logits: Tensor, target) -> Tensor:
    """Mean cross-entropy between raw ``logits`` and integer class ``target``.

    ``logits`` has shape ``(batch, classes)`` (or ``(batch, seq, classes)``,
    in which case the loss averages over both batch and sequence positions).
    """
    target = _as_index_array(target)
    log_probs = logits.log_softmax(axis=-1)
    if log_probs.ndim == 3:
        batch, seq, classes = log_probs.shape
        log_probs = log_probs.reshape(batch * seq, classes)
        target = target.reshape(-1)
    rows = np.arange(target.shape[0])
    picked = log_probs[rows, target]
    return -picked.mean()


def nll_loss(log_probs: Tensor, target) -> Tensor:
    """Negative log-likelihood given precomputed log-probabilities."""
    target = _as_index_array(target)
    rows = np.arange(target.shape[0])
    return -log_probs[rows, target].mean()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target_t).abs().mean()


class CrossEntropyLoss(Module):
    """Module wrapper around :func:`cross_entropy`."""

    def forward(self, logits: Tensor, target) -> Tensor:
        return cross_entropy(logits, target)


class NLLLoss(Module):
    def forward(self, log_probs: Tensor, target) -> Tensor:
        return nll_loss(log_probs, target)


class MSELoss(Module):
    def forward(self, prediction: Tensor, target) -> Tensor:
        return mse_loss(prediction, target)


class L1Loss(Module):
    def forward(self, prediction: Tensor, target) -> Tensor:
        return l1_loss(prediction, target)
