"""Optimizers and learning-rate schedulers.

Two pieces of this module matter specifically to Flor (Section 5.2.1):

* An :class:`Optimizer` mutates the model's parameters in place via
  ``step()`` — the side-effect that static analysis of ``optimizer.step()``
  cannot see.  Flor's changeset augmentation therefore encodes the fact
  "the model may be updated via the optimizer": when an optimizer appears
  in a loop's changeset, the parameters it manages are added as well.
* An :class:`LRScheduler` mutates the optimizer's learning rate, the second
  encoded fact ("the optimizer may be updated via the learning rate
  schedule").

Both classes expose ``state_dict`` / ``load_state_dict`` so that Loop End
Checkpoints can capture and restore them exactly.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

import numpy as np

from .module import Parameter
from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW",
           "LRScheduler", "StepLR", "MultiStepLR", "CosineAnnealingLR",
           "LambdaLR", "clip_grad_norm"]


class Optimizer:
    """Base class; holds parameters and per-parameter state."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 weight_decay: float = 0.0):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr < 0:
            raise ValueError(f"invalid learning rate {lr}")
        if weight_decay < 0:
            raise ValueError(f"invalid weight decay {weight_decay}")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.state: dict[int, dict[str, np.ndarray | int]] = {}
        self._step_count = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Checkpoint protocol
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Return a picklable snapshot of hyperparameters and per-param state."""
        packed_state = {}
        for index, param in enumerate(self.params):
            entry = self.state.get(id(param))
            if entry is not None:
                packed_state[index] = {
                    key: (value.copy() if isinstance(value, np.ndarray) else value)
                    for key, value in entry.items()
                }
        return {
            "lr": self.lr,
            "weight_decay": self.weight_decay,
            "step_count": self._step_count,
            "state": packed_state,
            "param_values": [p.data.copy() for p in self.params],
        }

    def load_state_dict(self, snapshot: dict, restore_params: bool = True) -> None:
        """Restore hyperparameters, per-param state and (optionally) params."""
        self.lr = float(snapshot["lr"])
        self.weight_decay = float(snapshot["weight_decay"])
        self._step_count = int(snapshot["step_count"])
        self.state.clear()
        for index, entry in snapshot["state"].items():
            param = self.params[int(index)]
            self.state[id(param)] = {
                key: (value.copy() if isinstance(value, np.ndarray) else value)
                for key, value in entry.items()
            }
        if restore_params:
            for param, value in zip(self.params, snapshot["param_values"]):
                param.data[...] = value

    def managed_parameters(self) -> list[Parameter]:
        """Parameters this optimizer mutates — used by changeset augmentation."""
        return list(self.params)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        if momentum < 0:
            raise ValueError(f"invalid momentum {momentum}")
        self.momentum = float(momentum)

    def step(self) -> None:
        self._step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                entry = self.state.setdefault(id(param), {})
                velocity = entry.get("velocity")
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                entry["velocity"] = velocity
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba).  ``weight_decay`` here is L2-coupled."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.betas = betas
        self.eps = eps

    def _update(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        beta1, beta2 = self.betas
        entry = self.state.setdefault(id(param), {})
        exp_avg = entry.get("exp_avg")
        exp_avg_sq = entry.get("exp_avg_sq")
        step = int(entry.get("step", 0)) + 1
        if exp_avg is None:
            exp_avg = np.zeros_like(param.data)
            exp_avg_sq = np.zeros_like(param.data)
        exp_avg = beta1 * exp_avg + (1 - beta1) * grad
        exp_avg_sq = beta2 * exp_avg_sq + (1 - beta2) * grad * grad
        entry.update(exp_avg=exp_avg, exp_avg_sq=exp_avg_sq, step=step)
        bias_correction1 = 1 - beta1 ** step
        bias_correction2 = 1 - beta2 ** step
        denom = np.sqrt(exp_avg_sq / bias_correction2) + self.eps
        return (exp_avg / bias_correction1) / denom

    def step(self) -> None:
        self._step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            param.data -= self.lr * self._update(param, grad)


class AdamW(Adam):
    """Adam with decoupled weight decay (the fine-tuning default)."""

    def step(self) -> None:
        self._step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * self._update(param, param.grad)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a maximum global L2 norm; return the norm."""
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total


# ---------------------------------------------------------------------- #
# Learning-rate schedulers
# ---------------------------------------------------------------------- #
class LRScheduler:
    """Base learning-rate scheduler; mutates ``optimizer.lr`` on ``step()``."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.last_epoch += 1
        self.optimizer.lr = self.get_lr()

    def state_dict(self) -> dict:
        return {"base_lr": self.base_lr, "last_epoch": self.last_epoch,
                "current_lr": self.optimizer.lr}

    def load_state_dict(self, snapshot: dict) -> None:
        self.base_lr = float(snapshot["base_lr"])
        self.last_epoch = int(snapshot["last_epoch"])
        self.optimizer.lr = float(snapshot["current_lr"])

    def managed_optimizer(self) -> Optimizer:
        """The optimizer this scheduler mutates — used by changeset augmentation."""
        return self.optimizer


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` at each epoch in ``milestones``."""

    def __init__(self, optimizer: Optimizer, milestones: Iterable[int],
                 gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.last_epoch >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * progress))


class LambdaLR(LRScheduler):
    """Scale the base LR by a user-supplied function of the epoch index."""

    def __init__(self, optimizer: Optimizer, lr_lambda: Callable[[int], float]):
        super().__init__(optimizer)
        self.lr_lambda = lr_lambda

    def get_lr(self) -> float:
        return self.base_lr * self.lr_lambda(self.last_epoch)
