"""Weight initialisation schemes for the torchlike substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "normal_", "zeros_", "ones_",
           "seeded_rng"]


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy Generator; reproducible when ``seed`` is given."""
    return np.random.default_rng(seed)


def kaiming_uniform(shape: tuple[int, ...], fan_in: int,
                    rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (suits ReLU networks)."""
    bound = float(np.sqrt(6.0 / max(fan_in, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (suits tanh/linear networks)."""
    bound = float(np.sqrt(6.0 / max(fan_in + fan_out, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal_(shape: tuple[int, ...], std: float,
            rng: np.random.Generator) -> np.ndarray:
    """Zero-mean Gaussian initialisation with standard deviation ``std``."""
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros_(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones_(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
