"""``repro.torchlike`` — a from-scratch, NumPy-backed PyTorch-like substrate.

The Flor paper assumes training loops written against PyTorch; this package
provides the pieces of that interface the paper's mechanisms touch:

* autograd tensors (:mod:`repro.torchlike.tensor`),
* modules with ``state_dict``/``load_state_dict`` (:mod:`repro.torchlike.module`),
* layers covering convolutional, transformer and recurrent models
  (:mod:`repro.torchlike.layers`),
* losses (:mod:`repro.torchlike.loss`),
* optimizers and LR schedulers that mutate state in place
  (:mod:`repro.torchlike.optim`),
* data loading (:mod:`repro.torchlike.data`),
* state serialization (:mod:`repro.torchlike.serialization`).
"""

from . import functional
from . import init
from .data import DataLoader, Dataset, TensorDataset, random_split
from .layers import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Dropout,
                     Embedding, FireModule, Flatten, GELU, GlobalAvgPool2d,
                     Identity, LayerNorm, Linear, LSTMCell, MaxPool2d,
                     MultiHeadSelfAttention, ReLU, ResidualBlock, Sequential,
                     Sigmoid, Tanh, TransformerEncoderLayer)
from .loss import (CrossEntropyLoss, L1Loss, MSELoss, NLLLoss, cross_entropy,
                   l1_loss, mse_loss, nll_loss)
from .module import Module, Parameter
from .optim import (Adam, AdamW, CosineAnnealingLR, LambdaLR, LRScheduler,
                    MultiStepLR, Optimizer, SGD, StepLR, clip_grad_norm)
from .serialization import (load, restore_training_state, save,
                            snapshot_training_state, state_nbytes)
from .tensor import (Tensor, arange, cat, empty, full, no_grad, ones, rand,
                     randn, stack, tensor, zeros)

__all__ = [
    "functional", "init",
    "Tensor", "tensor", "zeros", "ones", "full", "empty", "randn", "rand",
    "arange", "stack", "cat", "no_grad",
    "Module", "Parameter",
    "Linear", "Conv2d", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d",
    "BatchNorm1d", "BatchNorm2d", "LayerNorm", "Dropout", "Embedding",
    "ReLU", "GELU", "Tanh", "Sigmoid", "Flatten", "Sequential", "Identity",
    "LSTMCell", "MultiHeadSelfAttention", "TransformerEncoderLayer",
    "ResidualBlock", "FireModule",
    "CrossEntropyLoss", "MSELoss", "L1Loss", "NLLLoss",
    "cross_entropy", "mse_loss", "l1_loss", "nll_loss",
    "Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm",
    "LRScheduler", "StepLR", "MultiStepLR", "CosineAnnealingLR", "LambdaLR",
    "Dataset", "TensorDataset", "DataLoader", "random_split",
    "save", "load", "state_nbytes", "snapshot_training_state",
    "restore_training_state",
]
