"""Datasets and data loading for the torchlike substrate.

The DataLoader mirrors the PyTorch shape that the paper's training loops
assume (``for batch in trainloader:``) — the nested training loop in
Figure 2 / Figure 6 iterates over one of these.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Dataset", "TensorDataset", "DataLoader", "random_split"]


class Dataset:
    """Abstract dataset: indexable and sized."""

    def __getitem__(self, index: int):
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset wrapping equal-length arrays; yields per-example tuples."""

    def __init__(self, *arrays):
        if not arrays:
            raise ValueError("TensorDataset needs at least one array")
        self.arrays = [a.data if isinstance(a, Tensor) else np.asarray(a)
                       for a in arrays]
        length = len(self.arrays[0])
        for array in self.arrays:
            if len(array) != length:
                raise ValueError("all arrays must have the same length, got "
                                 f"{[len(a) for a in self.arrays]}")

    def __getitem__(self, index: int):
        return tuple(array[index] for array in self.arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])


class DataLoader:
    """Mini-batch iterator over a :class:`Dataset`.

    Batches are tuples of stacked arrays, one per dataset field.  Shuffling
    is seeded so a record run and a replay run see identical batch order —
    the paper relies on training nondeterminism being captured (Section 7,
    Output Deterministic Replay discussion).
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32,
                 shuffle: bool = False, seed: int | None = 0,
                 drop_last: bool = False):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self._epoch = 0

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def set_epoch(self, epoch: int) -> None:
        """Advance the shuffle seed deterministically (mirrors DistributedSampler)."""
        self._epoch = epoch

    def __iter__(self) -> Iterator[tuple]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            rng = np.random.default_rng(
                None if self.seed is None else self.seed + self._epoch)
            rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            samples = [self.dataset[int(i)] for i in batch_indices]
            fields = list(zip(*samples))
            yield tuple(np.stack(field) for field in fields)


def random_split(dataset: Dataset, lengths: Sequence[int],
                 seed: int = 0) -> list["_Subset"]:
    """Split a dataset into non-overlapping subsets of the given lengths."""
    if sum(lengths) != len(dataset):
        raise ValueError(
            f"sum of lengths {sum(lengths)} != dataset size {len(dataset)}")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(len(dataset))
    subsets = []
    offset = 0
    for length in lengths:
        subsets.append(_Subset(dataset, permutation[offset:offset + length]))
        offset += length
    return subsets


class _Subset(Dataset):
    def __init__(self, dataset: Dataset, indices: np.ndarray):
        self.dataset = dataset
        self.indices = np.asarray(indices)

    def __getitem__(self, index: int):
        return self.dataset[int(self.indices[index])]

    def __len__(self) -> int:
        return len(self.indices)
