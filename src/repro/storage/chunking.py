"""Content-addressed chunking of serialized checkpoint payloads.

Delta checkpoints hinge on one observation: consecutive epochs of the same
run serialize to *mostly* the same bytes (a fine-tuned head atop frozen
features, an optimizer whose buffers converged, a model that stopped
improving).  Splitting each payload into content-addressed chunks and
storing only the chunks whose digest is new turns that byte-level overlap
into storage savings — the sub-object granularity lever the LSM/survey
storage literature applies to write amplification.

Two chunkers ship behind ``FlorConfig.chunking``:

``fixed``
    Split every segment into ``chunk_nbytes`` slices.  O(1) planning, and
    because the serializer restarts segments at tensor boundaries
    (:func:`~repro.storage.serializer.payload_segments`), an unchanged
    tensor produces byte-identical chunks across epochs even when its
    neighbours changed length.
``cdc``
    Content-defined chunking: boundaries where a windowed rolling hash of
    the content hits a target pattern, so an insertion or deletion only
    disturbs the chunks around it instead of shifting every boundary after
    it.  The rolling hash is a gear-table windowed sum, vectorized with a
    numpy prefix sum — O(n) with no per-byte Python loop.  Chunk sizes are
    bounded in ``[chunk_nbytes // 4, chunk_nbytes * 4]`` with forced cuts
    at the maximum.

Both restart at segment boundaries, and both coalesce runs of tiny
segments (pickle heads, scalar optimizer state) so a checkpoint never
shatters into confetti-sized blobs.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..exceptions import StorageError

__all__ = ["CHUNKING_MODES", "DEFAULT_CHUNK_NBYTES", "chunk_payload",
           "chunk_spans"]

#: Chunking modes accepted by the configuration layer.
CHUNKING_MODES = ("off", "fixed", "cdc")

#: Default target chunk size (256 KiB): large enough that recipe rows and
#: per-chunk hashing stay cheap, small enough that one changed tensor slice
#: does not re-store a whole checkpoint.
DEFAULT_CHUNK_NBYTES = 1 << 18

#: Bytes in the rolling-hash window.
_WINDOW = 48

#: CDC size bounds relative to the target chunk size.
_MIN_DIVISOR = 4
_MAX_FACTOR = 4


def _build_gear_table() -> np.ndarray:
    """256 pseudo-random 64-bit gears, derived deterministically.

    sha256 rather than a seeded RNG: the table is on-disk format (chunk
    boundaries must reproduce across interpreter and numpy versions), and
    hashlib's output is stable by specification.
    """
    gears = np.empty(256, dtype=np.uint64)
    for value in range(256):
        digest = hashlib.sha256(b"flor-gear" + bytes([value])).digest()
        gears[value] = int.from_bytes(digest[:8], "little")
    return gears


_GEAR = _build_gear_table()


def _mask_for(target: int) -> np.uint64:
    """Boundary mask giving ~one candidate per ``target`` bytes."""
    bits = max(1, int(target).bit_length() - 1)
    return np.uint64((1 << bits) - 1)


def _cdc_cuts(view: memoryview, target: int) -> list[int]:
    """Cut offsets (exclusive chunk ends) within one segment."""
    n = len(view)
    min_size = max(1, target // _MIN_DIVISOR)
    max_size = target * _MAX_FACTOR
    if n <= max_size:
        return [n]
    gears = _GEAR[np.frombuffer(view, dtype=np.uint8)]
    # Windowed gear sum via prefix sums (uint64 wraps modulo 2**64, which
    # is exactly the arithmetic the rolling hash wants).
    prefix = np.cumsum(gears, dtype=np.uint64)
    windowed = prefix[_WINDOW:] - prefix[:-_WINDOW]
    mask = _mask_for(target)
    # Candidate cut after byte i  <=>  window ending at i matches the mask.
    candidates = np.flatnonzero((windowed & mask) == mask) + _WINDOW + 1
    cuts: list[int] = []
    start = 0
    while n - start > max_size:
        lo = int(np.searchsorted(candidates, start + min_size, side="left"))
        hi = int(np.searchsorted(candidates, start + max_size, side="right"))
        cut = int(candidates[lo]) if lo < hi else start + max_size
        cuts.append(cut)
        start = cut
    cuts.append(n)
    return cuts


def _coalesce_segments(segments: list[tuple[int, int]],
                       floor: int) -> list[tuple[int, int]]:
    """Merge runs of adjacent tiny segments up to ``floor`` bytes.

    Only small segments merge with each other: a segment of ``floor`` or
    more bytes always starts its own group, so a tensor's chunk
    boundaries never shift just because the pickle head (or a scalar
    neighbour) in front of it changed size — that alignment is what lets
    an unchanged tensor dedup across epochs.  A sub-floor group left
    before a large segment stays as one small chunk, which is harmless;
    the floor exists to prevent *runs* of confetti-sized blobs.

    Segments must be contiguous (each starts where the previous ended) —
    true of serializer frames by construction.
    """
    merged: list[tuple[int, int]] = []
    for offset, length in segments:
        if merged and merged[-1][1] < floor and length < floor:
            last_offset, last_length = merged[-1]
            if last_offset + last_length != offset:
                raise StorageError("payload segments are not contiguous")
            merged[-1] = (last_offset, last_length + length)
        else:
            merged.append((offset, length))
    return merged


def chunk_spans(data, *, mode: str = "fixed",
                chunk_nbytes: int = DEFAULT_CHUNK_NBYTES,
                segments: list[tuple[int, int]] | None = None
                ) -> list[tuple[int, int]]:
    """Plan chunk ``(offset, length)`` spans over ``data``.

    ``segments`` (from :func:`~repro.storage.serializer.payload_segments`)
    restart chunk boundaries, so chunking is per-tensor rather than
    per-payload; ``None`` treats the payload as one segment.  Spans cover
    the payload exactly, in order; an empty payload has no chunks.
    """
    if mode not in CHUNKING_MODES:
        raise StorageError(f"chunking mode must be one of {CHUNKING_MODES}, "
                           f"got {mode!r}")
    if chunk_nbytes < 1:
        raise StorageError(
            f"chunk_nbytes must be >= 1, got {chunk_nbytes}")
    view = memoryview(data)
    n = len(view)
    if n == 0:
        return []
    if mode == "off":
        return [(0, n)]
    if segments is None:
        segments = [(0, n)]
    segments = _coalesce_segments(
        [seg for seg in segments if seg[1] > 0],
        max(1, chunk_nbytes // _MIN_DIVISOR))
    spans: list[tuple[int, int]] = []
    for offset, length in segments:
        if mode == "fixed":
            for start in range(0, length, chunk_nbytes):
                spans.append((offset + start,
                              min(chunk_nbytes, length - start)))
        else:
            start = 0
            for cut in _cdc_cuts(view[offset:offset + length], chunk_nbytes):
                spans.append((offset + start, cut - start))
                start = cut
    return spans


def chunk_payload(data, *, mode: str = "fixed",
                  chunk_nbytes: int = DEFAULT_CHUNK_NBYTES,
                  segments: list[tuple[int, int]] | None = None
                  ) -> list[memoryview]:
    """Chunk ``data`` into zero-copy views (see :func:`chunk_spans`)."""
    view = memoryview(data)
    return [view[offset:offset + length]
            for offset, length in chunk_spans(
                view, mode=mode, chunk_nbytes=chunk_nbytes,
                segments=segments)]
