"""Checkpoint storage: the persistence layer of hindsight logging.

The record phase turns loop state into Loop End Checkpoints; this package
owns everything that happens to them afterwards:

* :mod:`~repro.storage.serializer` — snapshots Python values (state-dict
  aware, so models checkpoint as weight arrays, not object graphs) and
  pickles snapshot lists into payload bytes, timing the work for the
  adaptive controller.
* :mod:`~repro.storage.compression` — gzip codec for payloads (Table 4
  reports compressed sizes).
* :mod:`~repro.storage.backends` — the pluggable backend abstraction:
  ``local`` (one SQLite manifest + payload tree), ``memory`` (process-local,
  for tests/benchmarks) and ``sharded`` (checkpoints partitioned by
  ``hash(block_id) % num_shards``, one manifest per shard).
* :mod:`~repro.storage.checkpoint_store` — the facade every other module
  talks to: compression, digests, run metadata, source snapshots, and
  backend routing behind a stable API.
* :mod:`~repro.storage.spool` — :class:`AsyncSpool`, the bounded background
  materialization pipeline (worker pool, batched manifest commits,
  backpressure, a ``flush()`` barrier), plus the paper's EBS-to-S3
  transfer sim.
* :mod:`~repro.storage.objectstore` — the content-addressed payload plane:
  one blob per payload digest, shared by every run under a Flor home, so
  identical checkpoints (across executions *and* runs) dedup to one copy.
* :mod:`~repro.storage.lifecycle` — retention policies, manifest-first
  pruning, mark-and-sweep payload GC (inline, at close, or on the spool's
  background workers), and the home's storage-footprint accounting.
* :mod:`~repro.storage.costs` — the cloud pricing model behind the paper's
  storage-cost tables.

The durability contract threaded through all of it: payloads are written
before their manifest rows commit, and deleted only after no manifest row
references them — so the manifest never references a missing payload, in
either direction of the lifecycle.
"""

from .backends import (BACKEND_NAMES, InMemoryBackend, LocalSQLiteBackend,
                       ShardedSQLiteBackend, StorageBackend, resolve_backend)
from .checkpoint_store import CheckpointRecord, CheckpointStore
from .compression import CompressionResult, compress, compression_ratio, decompress
from .costs import (GiB, INSTANCE_PRICES, InstanceType, S3_PRICE_PER_GB_MONTH,
                    compute_cost, gb, storage_cost_per_month)
from .lifecycle import (GCReport, LifecycleManager, PruneReport,
                        RetentionPolicy, StorageStats, collect_garbage,
                        measure_storage, plan_retention, prune_store,
                        retire_run)
from .objectstore import (FileObjectStore, MemoryObjectStore,
                          ObjectStoreStats, PayloadObjectStore)
from .serializer import (SerializedCheckpoint, ValueSnapshot,
                         deserialize_checkpoint, restore_value,
                         serialize_checkpoint, snapshot_value)
from .spool import AsyncSpool, AsyncSpoolStats, BackgroundSpooler, SpoolStats

__all__ = [
    "CheckpointStore", "CheckpointRecord",
    "StorageBackend", "LocalSQLiteBackend", "InMemoryBackend",
    "ShardedSQLiteBackend", "resolve_backend", "BACKEND_NAMES",
    "PayloadObjectStore", "FileObjectStore", "MemoryObjectStore",
    "ObjectStoreStats",
    "RetentionPolicy", "PruneReport", "GCReport", "StorageStats",
    "LifecycleManager", "plan_retention", "prune_store", "retire_run",
    "collect_garbage", "measure_storage",
    "ValueSnapshot", "SerializedCheckpoint", "snapshot_value", "restore_value",
    "serialize_checkpoint", "deserialize_checkpoint",
    "compress", "decompress", "compression_ratio", "CompressionResult",
    "S3_PRICE_PER_GB_MONTH", "INSTANCE_PRICES", "InstanceType",
    "storage_cost_per_month", "compute_cost", "gb", "GiB",
    "AsyncSpool", "AsyncSpoolStats", "BackgroundSpooler", "SpoolStats",
]
