"""Checkpoint storage: serialization, compression, the SQLite-indexed store,
cloud pricing, and background spooling to (simulated) object storage."""

from .checkpoint_store import CheckpointRecord, CheckpointStore
from .compression import CompressionResult, compress, compression_ratio, decompress
from .costs import (GiB, INSTANCE_PRICES, InstanceType, S3_PRICE_PER_GB_MONTH,
                    compute_cost, gb, storage_cost_per_month)
from .serializer import (SerializedCheckpoint, ValueSnapshot,
                         deserialize_checkpoint, restore_value,
                         serialize_checkpoint, snapshot_value)
from .spool import BackgroundSpooler, SpoolStats

__all__ = [
    "CheckpointStore", "CheckpointRecord",
    "ValueSnapshot", "SerializedCheckpoint", "snapshot_value", "restore_value",
    "serialize_checkpoint", "deserialize_checkpoint",
    "compress", "decompress", "compression_ratio", "CompressionResult",
    "S3_PRICE_PER_GB_MONTH", "INSTANCE_PRICES", "InstanceType",
    "storage_cost_per_month", "compute_cost", "gb", "GiB",
    "BackgroundSpooler", "SpoolStats",
]
