"""Cloud storage and compute pricing model.

The paper prices checkpoint storage at S3 rates (Table 4: "we can store
130 GB for a month at the same cost as running a single-GPU instance for an
hour") and prices replay on EC2 P3 instances (Figure 14).  This module
encodes the 2020 us-west-2 prices the paper's numbers imply and exposes the
arithmetic used by both the live store and the paper-scale simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SimulationError

__all__ = ["S3_PRICE_PER_GB_MONTH", "INSTANCE_PRICES", "InstanceType",
           "storage_cost_per_month", "compute_cost", "gb", "GiB"]

#: S3 standard storage price (USD per GB-month), us-west-2, 2020.
S3_PRICE_PER_GB_MONTH = 0.023

#: Bytes per binary gigabyte.
GiB = 1024 ** 3


@dataclass(frozen=True)
class InstanceType:
    """An EC2 instance type relevant to the paper's evaluation."""

    name: str
    gpus: int
    gpu_memory_gb: int
    vcpus: int
    ram_gb: int
    hourly_usd: float


#: On-demand prices (USD/hour), us-west-2, 2020 — the instances of Section 6.
INSTANCE_PRICES: dict[str, InstanceType] = {
    "p3.2xlarge": InstanceType("p3.2xlarge", gpus=1, gpu_memory_gb=16,
                               vcpus=8, ram_gb=61, hourly_usd=3.06),
    "p3.8xlarge": InstanceType("p3.8xlarge", gpus=4, gpu_memory_gb=64,
                               vcpus=32, ram_gb=244, hourly_usd=12.24),
    "p3.16xlarge": InstanceType("p3.16xlarge", gpus=8, gpu_memory_gb=128,
                                vcpus=64, ram_gb=488, hourly_usd=24.48),
}


def gb(nbytes: int | float) -> float:
    """Convert bytes to (binary) gigabytes."""
    return float(nbytes) / GiB


def storage_cost_per_month(nbytes: int | float,
                           price_per_gb_month: float = S3_PRICE_PER_GB_MONTH
                           ) -> float:
    """Monthly S3 cost (USD) of storing ``nbytes`` of checkpoints.

    Matches Table 4's arithmetic: compressed checkpoint bytes times the
    standard-storage price.  Data transfer is free because the paper keeps
    the EC2 instance and the S3 bucket in the same region.
    """
    if nbytes < 0:
        raise SimulationError(f"negative storage size {nbytes}")
    return gb(nbytes) * price_per_gb_month


def compute_cost(hours: float, instance: str = "p3.8xlarge",
                 count: int = 1) -> float:
    """Dollar cost of running ``count`` instances of ``instance`` for ``hours``.

    EC2 bills per-second with a one-minute minimum; at the hour scales of the
    paper's experiments the per-second model is indistinguishable from the
    linear model used here.
    """
    if hours < 0:
        raise SimulationError(f"negative duration {hours}")
    if count < 1:
        raise SimulationError(f"instance count must be >= 1, got {count}")
    try:
        spec = INSTANCE_PRICES[instance]
    except KeyError as exc:
        raise SimulationError(
            f"unknown instance type {instance!r}; known: "
            f"{sorted(INSTANCE_PRICES)}") from exc
    return hours * spec.hourly_usd * count
