"""Storage lifecycle: retention policies, pruning, and garbage collection.

The record path only ever *adds* checkpoints; this module is the other
half of the ledger.  It retires manifest rows under a declarative
:class:`RetentionPolicy`, sweeps payload blobs no manifest references any
more, and reports what the home actually costs on disk — the
content-addressed analogue of how multi-petabyte survey stores keep a
bounded footprint with policy-driven retention and compaction.

Crash-consistency is ordering, not machinery:

* **manifest-first** — :func:`prune_store` deletes manifest rows in one
  backend transaction *before* any payload is touched.  A crash after the
  commit leaves orphaned payloads (swept by the next GC), never a
  manifest row pointing at a missing payload.
* **payload-last** — :func:`collect_garbage` re-derives the referenced
  digest set from every run's manifest *at sweep time* and deletes only
  blobs outside it.  An interrupted sweep leaves some orphans for the
  next pass; it can never delete a referenced blob, because referencedness
  is read from the same manifests replay reads.

GC runs inline (``repro.gc()``, ``CheckpointStore.gc()``), at session
close, or periodically on the async spool's background workers via
:class:`LifecycleManager` — the record hot path never blocks on it.

Replay stays correct after pruning by construction: the replay scheduler
derives restorable iterations from the manifest, so pruned executions
simply vanish from the aligned set and workers bridge (recompute) from
the nearest surviving checkpoint.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..exceptions import StorageError
from ..telemetry import get_tracer
from ..utils.timing import monotonic
from .backends import (SHARD_MANIFEST_NAME, StorageBackend,
                       registered_memory_backends)
from .objectstore import (FileObjectStore, MemoryObjectStore,
                          PayloadObjectStore, default_objects_dir)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .checkpoint_store import CheckpointStore

__all__ = ["DEFAULT_GC_GRACE_SECONDS", "RetentionPolicy", "PruneReport",
           "GCReport", "StorageStats", "plan_retention", "prune_store",
           "retire_run", "collect_garbage", "measure_storage",
           "LifecycleManager"]


# --------------------------------------------------------------------------- #
# Policy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetentionPolicy:
    """Declarative description of which checkpoints a run must keep.

    Every rule is a *keep filter*; a checkpoint is pruned when any active
    rule rejects it.  Two guardrails apply regardless of the rules:
    checkpoints younger than ``min_age_seconds`` are never pruned, and the
    newest (highest-index) checkpoint of every block always survives — it
    is the bridge anchor partial replay resumes from.

    Parameters
    ----------
    keep_last_n:
        Keep only the ``n`` highest execution indices per block.
    keep_aligned_only:
        Keep only checkpoints at *aligned* iterations (restorable across
        every main-loop block — the replay scheduler's restore points);
        repeats-within-iteration and stragglers are pruned.
    max_total_bytes:
        Cap the run's logical stored bytes; oldest checkpoints are pruned
        first until the cap holds.
    min_age_seconds:
        Grace period: checkpoints younger than this are exempt from every
        rule (protects in-flight work from a concurrently running GC).
    """

    keep_last_n: int | None = None
    keep_aligned_only: bool = False
    max_total_bytes: int | None = None
    min_age_seconds: float = 0.0

    def validate(self) -> "RetentionPolicy":
        if self.keep_last_n is not None and (
                not isinstance(self.keep_last_n, int)
                or isinstance(self.keep_last_n, bool)
                or self.keep_last_n < 1):
            raise StorageError(
                f"keep_last_n must be an integer >= 1 or None, "
                f"got {self.keep_last_n!r}")
        if self.max_total_bytes is not None and (
                not isinstance(self.max_total_bytes, int)
                or isinstance(self.max_total_bytes, bool)
                or self.max_total_bytes < 0):
            raise StorageError(
                f"max_total_bytes must be an integer >= 0 or None, "
                f"got {self.max_total_bytes!r}")
        if self.min_age_seconds < 0:
            raise StorageError(
                f"min_age_seconds must be >= 0, got {self.min_age_seconds!r}")
        return self

    def is_active(self) -> bool:
        """Whether any rule can prune anything."""
        return (self.keep_last_n is not None or self.keep_aligned_only
                or self.max_total_bytes is not None)

    def to_dict(self) -> dict:
        return {"keep_last_n": self.keep_last_n,
                "keep_aligned_only": self.keep_aligned_only,
                "max_total_bytes": self.max_total_bytes,
                "min_age_seconds": self.min_age_seconds}

    @classmethod
    def from_dict(cls, payload: dict) -> "RetentionPolicy":
        return cls(
            keep_last_n=payload.get("keep_last_n"),
            keep_aligned_only=bool(payload.get("keep_aligned_only", False)),
            max_total_bytes=payload.get("max_total_bytes"),
            min_age_seconds=float(payload.get("min_age_seconds", 0.0)),
        ).validate()


# --------------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------------- #
@dataclass
class PruneReport:
    """Outcome of one retention pass over one run's manifest."""

    examined: int = 0
    pruned: int = 0
    kept: int = 0
    logical_nbytes_freed: int = 0
    legacy_payload_nbytes_freed: int = 0
    pruned_keys: list[tuple[str, int]] = field(default_factory=list)
    #: Content digests the pruned rows referenced — release *hints* for
    #: the follow-up GC pass (sweepable immediately, no grace needed,
    #: because this pruner just observed them go unreferenced-by-it).
    released_digests: list[str] = field(default_factory=list)
    #: Timestamp taken just before the manifest rows were deleted.  The
    #: follow-up GC passes it as ``hints_released_at``: a blob placed (or
    #: dedup-refreshed) *after* this instant was re-added by a concurrent
    #: writer the prune knew nothing about, so the hint must not bypass
    #: the grace for it.
    released_at: float | None = None

    def to_dict(self) -> dict:
        return {"examined": self.examined, "pruned": self.pruned,
                "kept": self.kept,
                "logical_nbytes_freed": self.logical_nbytes_freed,
                "legacy_payload_nbytes_freed":
                    self.legacy_payload_nbytes_freed}


@dataclass
class GCReport:
    """Outcome of one mark-and-sweep pass over a home's object stores."""

    home: str = ""
    scanned_runs: int = 0
    referenced_digests: int = 0
    swept_objects: int = 0
    swept_nbytes: int = 0
    kept_objects: int = 0
    kept_nbytes: int = 0
    deferred_objects: int = 0  # unreferenced but younger than the grace
    stranded_tmp_removed: int = 0
    dry_run: bool = False

    def to_dict(self) -> dict:
        return {"home": self.home, "scanned_runs": self.scanned_runs,
                "referenced_digests": self.referenced_digests,
                "swept_objects": self.swept_objects,
                "swept_nbytes": self.swept_nbytes,
                "kept_objects": self.kept_objects,
                "kept_nbytes": self.kept_nbytes,
                "deferred_objects": self.deferred_objects,
                "stranded_tmp_removed": self.stranded_tmp_removed,
                "dry_run": self.dry_run}


@dataclass
class StorageStats:
    """What a Flor home costs: logical checkpoint bytes vs physical blobs."""

    home: str = ""
    runs: int = 0
    checkpoints: int = 0
    #: Sum of manifest ``stored_nbytes`` — what storage would cost without
    #: dedup (every reference paying full price).
    logical_nbytes: int = 0
    #: Bytes of legacy per-execution payload files (referenced by rows
    #: with no ``payload_digest``); not deduplicated.
    legacy_nbytes: int = 0
    physical_objects: int = 0
    physical_nbytes: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes per physical blob byte (1.0 = no sharing)."""
        deduped_logical = self.logical_nbytes - self.legacy_nbytes
        if self.physical_nbytes <= 0:
            return 1.0
        return deduped_logical / self.physical_nbytes

    def to_dict(self) -> dict:
        return {"home": self.home, "runs": self.runs,
                "checkpoints": self.checkpoints,
                "logical_nbytes": self.logical_nbytes,
                "legacy_nbytes": self.legacy_nbytes,
                "physical_objects": self.physical_objects,
                "physical_nbytes": self.physical_nbytes,
                "dedup_ratio": round(self.dedup_ratio, 4)}


# --------------------------------------------------------------------------- #
# Retention planning and pruning (manifest-first)
# --------------------------------------------------------------------------- #
def _aligned_iterations(store: "CheckpointStore") -> set[int]:
    """The run's aligned (restorable-across-all-blocks) iterations."""
    # Function-level import: the scheduler lives above the storage layer.
    from ..replay.scheduler import aligned_checkpoints

    total = store.get_metadata("main_loop_total")
    if total is None:
        recorded = store.get_metadata("iterations_run") or []
        total = (max(recorded) + 1) if recorded else 0
    loop_blocks = store.get_metadata("loop_blocks")
    return set(aligned_checkpoints(store, int(total),
                                   loop_blocks=loop_blocks))


def plan_retention(store: "CheckpointStore", policy: RetentionPolicy,
                   *, now: float | None = None) -> list:
    """The manifest rows ``policy`` would prune, in deletion order.

    Pure planning — nothing is deleted.  See :class:`RetentionPolicy` for
    the rule semantics and the two unconditional guardrails.
    """
    policy.validate()
    if not policy.is_active():
        return []
    now = time.time() if now is None else now
    records = store.records()
    if not records:
        return []

    by_block: dict[str, list] = {}
    for record in records:
        by_block.setdefault(record.block_id, []).append(record)

    protected: set[tuple[str, int]] = set()
    for block_id, rows in by_block.items():
        # The bridge anchor: partial replay resumes from the newest
        # surviving checkpoint, so the newest always survives.
        anchor = max(rows, key=lambda r: r.execution_index)
        protected.add((block_id, anchor.execution_index))
    for record in records:
        if now - record.created_at < policy.min_age_seconds:
            protected.add((record.block_id, record.execution_index))

    aligned = (_aligned_iterations(store)
               if policy.keep_aligned_only else None)

    pruned: dict[tuple[str, int], object] = {}
    for block_id, rows in by_block.items():
        rows = sorted(rows, key=lambda r: r.execution_index)
        keep_tail = (set(r.execution_index for r in
                         rows[-policy.keep_last_n:])
                     if policy.keep_last_n is not None else None)
        for record in rows:
            key = (block_id, record.execution_index)
            if key in protected:
                continue
            if keep_tail is not None and \
                    record.execution_index not in keep_tail:
                pruned[key] = record
            elif aligned is not None and \
                    record.execution_index not in aligned:
                pruned[key] = record

    if policy.max_total_bytes is not None:
        surviving = [record for record in records
                     if (record.block_id, record.execution_index)
                     not in pruned]
        total = sum(record.stored_nbytes for record in surviving)
        # Oldest first; protected rows (anchors, young rows) never drop.
        for record in sorted(surviving,
                             key=lambda r: (r.created_at, r.block_id,
                                            r.execution_index)):
            if total <= policy.max_total_bytes:
                break
            key = (record.block_id, record.execution_index)
            if key in protected:
                continue
            pruned[key] = record
            total -= record.stored_nbytes

    return [pruned[key] for key in sorted(pruned)]


def _delete_records(store: "CheckpointStore", records: Iterable,
                    report: PruneReport) -> PruneReport:
    """Manifest-first deletion of ``records``, then legacy payload files."""
    records = list(records)
    keys = [(record.block_id, record.execution_index) for record in records]
    deleted = store.backend.delete_many(keys)  # one transaction per backend
    report.pruned = len(deleted)
    report.pruned_keys = [(r.block_id, r.execution_index) for r in deleted]
    report.logical_nbytes_freed = sum(r.stored_nbytes for r in deleted)
    released: set[str] = set()
    for record in deleted:
        if record.payload_digest:
            released.add(record.payload_digest)
        # Chunked rows release every chunk in their recipe; a chunk still
        # referenced by another row's recipe survives the sweep anyway
        # (referencedness wins over hints).
        released.update(record.recipe_digests())
    report.released_digests = sorted(released)
    # Payload-last: legacy per-execution files have exactly one referencing
    # row (just deleted), so they can go now; shared blobs wait for GC.
    for record in deleted:
        if record.is_legacy_payload():
            report.legacy_payload_nbytes_freed += \
                store.backend.discard_payload(str(record.path))
    return report


def prune_store(store: "CheckpointStore", policy: RetentionPolicy,
                *, now: float | None = None) -> PruneReport:
    """Apply ``policy`` to one run: delete rejected manifest rows.

    Rows vanish in one backend transaction *before* any payload does
    (manifest-first); content-addressed blobs are left to the next
    :func:`collect_garbage` pass, which alone may decide a blob is
    unreferenced across the whole home.
    """
    with get_tracer().span("lifecycle.prune") as span:
        report = PruneReport(examined=store.checkpoint_count())
        plan = plan_retention(store, policy, now=now)
        if plan:
            report.released_at = time.time()
            _delete_records(store, plan, report)
        report.kept = report.examined - report.pruned
        span.set(examined=report.examined, pruned=report.pruned)
    return report


def retire_run(store: "CheckpointStore") -> PruneReport:
    """Drop *every* checkpoint of a run (catalog metadata stays).

    The whole-run analogue of :func:`prune_store` — no policy, no
    anchors: the run's payload bytes are released (pending GC for shared
    blobs) while its manifest metadata, logs and catalog entry remain
    queryable.
    """
    report = PruneReport(examined=store.checkpoint_count())
    report.released_at = time.time()
    _delete_records(store, store.records(), report)
    report.kept = report.examined - report.pruned
    return report


# --------------------------------------------------------------------------- #
# Garbage collection (payload-last)
# --------------------------------------------------------------------------- #
#: Stranded ``.tmp`` files younger than this are never swept — they may be
#: another live writer's in-flight payload (its ``os.replace`` would fail).
_TMP_SWEEP_FLOOR_SECONDS = 300.0

#: Grace every *automatic* sweep uses (background passes, close-time
#: passes, the collect that follows ``repro.prune`` / catalog retire).
#: The object store is shared per home: a concurrently recording session
#: writes blobs before committing their manifest rows, and only the grace
#: stands between that window and a dangling row.  Explicit user calls
#: (``repro.gc()``) may choose 0.
DEFAULT_GC_GRACE_SECONDS = 60.0


def _looks_like_manifest_dir(path: Path) -> bool:
    """Whether ``path`` holds a checkpoint manifest GC must mark from."""
    return ((path / "manifest.sqlite").exists()
            or (path / SHARD_MANIFEST_NAME).exists())


def _home_backends(home: Path) -> list[tuple[StorageBackend, bool]]:
    """Every backend holding manifest rows for runs under ``home``.

    Returns ``(backend, opened_here)`` pairs; the caller closes the ones
    opened here (registered in-memory backends are shared and stay open).
    """
    # Function-level import: checkpoint_store imports this module lazily
    # and vice versa.
    from .checkpoint_store import CheckpointStore

    backends: list[tuple[StorageBackend, bool]] = []
    seen: set[int] = set()
    if home.is_dir():
        for run_dir in sorted(home.iterdir()):
            if run_dir.is_dir() and _looks_like_manifest_dir(run_dir):
                backend = CheckpointStore(run_dir).backend
                if id(backend) not in seen:
                    seen.add(id(backend))
                    backends.append((backend, True))
    for backend in registered_memory_backends(home):
        if id(backend) not in seen:
            seen.add(id(backend))
            backends.append((backend, False))
    return backends


def _home_object_stores(home: Path) -> list[PayloadObjectStore]:
    stores: list[PayloadObjectStore] = []
    objects_dir = default_objects_dir(home)
    if objects_dir.is_dir():
        stores.append(FileObjectStore.for_dir(objects_dir))
    registered = MemoryObjectStore.registered_for(home)
    if registered is not None:
        stores.append(registered)
    return stores


def referenced_digest_counts(home: str | Path) -> "Counter[str]":
    """Union of every run's derived payload refcounts under ``home``."""
    counts: "Counter[str]" = Counter()
    for backend, opened_here in _home_backends(Path(home)):
        counts.update(backend.referenced_digests())
        if opened_here:
            backend.close()
    return counts


def collect_garbage(home: str | Path, *, grace_seconds: float = 0.0,
                    dry_run: bool = False,
                    extra_referenced: Iterable[str] = (),
                    release_hints: Iterable[str] = (),
                    hints_released_at: float | None = None) -> GCReport:
    """Mark-and-sweep the home's object stores (the payload-last half).

    Mark re-derives the referenced digest set from every manifest under
    ``home`` *now* — not from counters that could have drifted — then
    sweeps blobs outside the set.  ``grace_seconds`` defers
    recently-placed blobs: a concurrent recorder writes its payload
    before committing the manifest row, and the grace keeps that window
    from being swept out from under it.  ``extra_referenced`` lets a
    caller pin digests it knows are in flight (the spool's buffered
    records); ``release_hints`` does the opposite — digests the caller
    just pruned are swept without waiting out the grace (referencedness
    still wins: a hinted digest another run references is kept).
    ``dry_run`` reports without deleting.

    ``hints_released_at`` scopes the hints in *time* (pass the prune's
    :attr:`PruneReport.released_at`): a hinted blob placed — or
    dedup-refreshed — after that instant was re-added by a concurrent
    *writer* the pruner knew nothing about, so it falls back to the
    ordinary grace path instead of being swept out from under the
    writer's not-yet-committed manifest row.  Without a timestamp the
    hints are bounded by this pass's mark time, which protects re-adds
    during the sweep but not ones landing between the prune and the
    mark.
    """
    home = Path(home)
    with get_tracer().span("lifecycle.gc", dry_run=dry_run) as gc_span:
        report = _collect_garbage(
            home, grace_seconds=grace_seconds, dry_run=dry_run,
            extra_referenced=extra_referenced, release_hints=release_hints,
            hints_released_at=hints_released_at)
        gc_span.set(swept=report.swept_objects, kept=report.kept_objects)
    return report


def _collect_garbage(home: Path, *, grace_seconds: float, dry_run: bool,
                     extra_referenced: Iterable[str],
                     release_hints: Iterable[str],
                     hints_released_at: float | None) -> GCReport:
    report = GCReport(home=str(home), dry_run=dry_run)
    # The mark timestamp is taken BEFORE the mark phase: anything placed
    # or re-referenced while we scan manifests shows up as newer-than-mark
    # and survives the sweep's unlink-time age re-check.
    now = time.time()
    backends = _home_backends(home)
    report.scanned_runs = len(backends)
    referenced: "Counter[str]" = Counter()
    for backend, opened_here in backends:
        referenced.update(backend.referenced_digests())
        if opened_here:
            backend.close()
    for digest in extra_referenced:
        referenced[digest] += 1
    report.referenced_digests = len(referenced)

    released = set(release_hints)
    # Blobs touched after the hint cutoff are not covered by the hints.
    hint_cutoff = now if hints_released_at is None \
        else min(hints_released_at, now)
    for objects in _home_object_stores(home):
        held = objects.digests()
        sweepable: list[str] = []
        hinted_sweepable: list[str] = []
        for digest, nbytes in held.items():
            hinted = (digest in released
                      and objects.age_seconds(digest, now)
                      >= now - hint_cutoff)
            if digest in referenced:
                report.kept_objects += 1
                report.kept_nbytes += nbytes
            elif not hinted and \
                    objects.age_seconds(digest, now) < grace_seconds:
                report.deferred_objects += 1
                report.kept_objects += 1
                report.kept_nbytes += nbytes
            elif hinted:
                hinted_sweepable.append(digest)
            else:
                sweepable.append(digest)
        if dry_run:
            planned = sweepable + hinted_sweepable
            report.swept_objects += len(planned)
            report.swept_nbytes += sum(held[digest] for digest in planned)
        else:
            # ``not_newer_than`` re-checks age at unlink time: a blob a
            # concurrent writer re-referenced after this pass's mark
            # phase (dedup put -> age refresh -> manifest commit) must
            # survive even though the mark saw it as unreferenced.
            # Hinted blobs re-check against the *hint cutoff*: a dedup
            # re-put landing between the prune and this unlink makes the
            # hint stale for that blob, and the refreshed mtime vetoes
            # the deletion.
            deleted, freed = objects.delete(sweepable, not_newer_than=now)
            report.swept_objects += deleted
            report.swept_nbytes += freed
            deleted, freed = objects.delete(hinted_sweepable,
                                            not_newer_than=hint_cutoff)
            report.swept_objects += deleted
            report.swept_nbytes += freed
            if isinstance(objects, FileObjectStore):
                # Temp files are another writer's in-flight state: sweep
                # only ones old enough that their writer is surely dead,
                # regardless of how aggressive this pass's blob grace is.
                report.stranded_tmp_removed += objects.sweep_stranded_tmp(
                    max(grace_seconds, _TMP_SWEEP_FLOOR_SECONDS))
    return report


def measure_storage(home: str | Path) -> StorageStats:
    """Aggregate the home's manifest-plane and payload-plane footprint."""
    home = Path(home)
    stats = StorageStats(home=str(home))
    for backend, opened_here in _home_backends(home):
        stats.runs += 1
        for record in backend.records():
            stats.checkpoints += 1
            stats.logical_nbytes += record.stored_nbytes
            if record.is_legacy_payload():
                stats.legacy_nbytes += record.stored_nbytes
        if opened_here:
            backend.close()
    for objects in _home_object_stores(home):
        object_stats = objects.stats()
        stats.physical_objects += object_stats.objects
        stats.physical_nbytes += object_stats.total_nbytes
    return stats


# --------------------------------------------------------------------------- #
# Background scheduling
# --------------------------------------------------------------------------- #
class LifecycleManager:
    """Runs retention + GC for one store, inline or on the spool's workers.

    The async spool invokes :meth:`on_manifest_commit` after each batched
    manifest commit (already on a background worker, so the training hot
    path never pays for it); when ``gc_interval`` seconds have passed
    since the last pass, one prune + sweep runs.  Passes are serialized
    and non-reentrant — a worker that finds a pass in flight skips.

    Every pass sweeps with a grace period (default 60 s): the home's
    object store is shared, so a blob another session wrote but has not
    yet manifest-committed must never be collected — not even by the
    close-time pass, which only knows *this* session's spool is quiet.
    What this session's own prunes release is reclaimed immediately
    anyway: pruned digests accumulate as release hints, which sweep
    without waiting out the grace (unless another run still references
    them).
    """

    def __init__(self, store: "CheckpointStore", *,
                 policy: RetentionPolicy | None = None,
                 gc_interval: float | None = None,
                 grace_seconds: float = DEFAULT_GC_GRACE_SECONDS):
        if policy is not None:
            policy.validate()
        self.store = store
        self.policy = policy
        self.gc_interval = gc_interval
        self.grace_seconds = grace_seconds
        self.home = Path(store.run_dir).parent
        self.passes = 0
        self.last_prune: PruneReport | None = None
        self.last_gc: GCReport | None = None
        self._running = threading.Lock()
        self._last_pass = monotonic() if gc_interval is not None else 0.0

    def on_manifest_commit(self) -> None:
        """Spool hook: maybe run a background pass after a batch commit."""
        if self.gc_interval is None:
            return
        if monotonic() - self._last_pass < self.gc_interval:
            return
        self.run_once(grace_seconds=self.grace_seconds)

    def run_once(self, *, grace_seconds: float | None = None
                 ) -> tuple[PruneReport | None, GCReport | None]:
        """One serialized prune + GC pass; skipped if one is in flight."""
        if not self._running.acquire(blocking=False):
            return None, None
        try:
            self._last_pass = monotonic()
            # Hints are one-shot: only what THIS pass's prune released may
            # bypass the grace.  A digest released in an earlier pass can
            # be legitimately *re*-referenced later (identical payload
            # re-recorded); a stale hint would let the sweep delete it in
            # exactly the payload-written / row-not-yet-committed window
            # the grace exists to protect.
            released: list[str] = []
            released_at: float | None = None
            if self.policy is not None and self.policy.is_active():
                self.last_prune = prune_store(self.store, self.policy)
                released = self.last_prune.released_digests
                released_at = self.last_prune.released_at
            grace = self.grace_seconds if grace_seconds is None \
                else grace_seconds
            self.last_gc = collect_garbage(self.home, grace_seconds=grace,
                                           release_hints=released,
                                           hints_released_at=released_at)
            self.passes += 1
            return self.last_prune, self.last_gc
        finally:
            self._running.release()

    def summary(self) -> dict:
        """Run-metadata payload describing what lifecycle did this run."""
        return {
            "policy": self.policy.to_dict() if self.policy else None,
            "gc_interval": self.gc_interval,
            "passes": self.passes,
            "last_prune": self.last_prune.to_dict()
                if self.last_prune else None,
            "last_gc": self.last_gc.to_dict() if self.last_gc else None,
        }
