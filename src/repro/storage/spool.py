"""Background spooling: the async materialization pipeline and the S3 sim.

Two spoolers live here:

:class:`AsyncSpool`
    The record-phase hot-path offloader.  ``submit`` enqueues snapshotted
    checkpoint objects on a **bounded** queue and returns immediately; a
    pool of workers (threads, or processes for the CPU-bound serialize +
    gzip stage) drains it, writes payloads through the store's backend,
    and commits manifest rows in **batches** (one transaction per batch).
    When the queue is full, ``submit`` blocks — backpressure — so memory
    stays bounded no matter how fast checkpoints arrive.  ``flush()`` is
    the barrier record/replay and tests rely on: after it returns, every
    submitted checkpoint is durable *and* indexed.

    Durability ordering: a payload is fully written before its manifest
    row enters the commit buffer, so a crash mid-spool can orphan payload
    files but the manifest never references a missing payload.

:class:`BackgroundSpooler`
    The paper's EBS-to-S3 transfer sim (Section 6 setup): a background
    thread gzip-copies finished checkpoint files into a "bucket"
    directory, tracking transferred bytes and the monthly bill.
"""

from __future__ import annotations

import queue
import shutil
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..exceptions import StorageError
from ..telemetry import get_metrics, get_tracer
from ..utils.timing import monotonic
from . import compression
from .backends import CheckpointRecord
from .costs import storage_cost_per_month
from .serializer import (SerializedCheckpoint, ValueSnapshot,
                         serialize_checkpoint)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .checkpoint_store import CheckpointStore

__all__ = ["SpoolStats", "BackgroundSpooler", "AsyncSpoolStats", "AsyncSpool"]

#: Worker-pool flavours the async spool supports.
SPOOL_MODES = ("thread", "process")


# --------------------------------------------------------------------------- #
# The async materialization pipeline
# --------------------------------------------------------------------------- #
@dataclass
class AsyncSpoolStats:
    """Aggregate accounting across one async spool's lifetime."""

    submitted: int = 0
    completed: int = 0
    indexed: int = 0
    raw_nbytes: int = 0
    stored_nbytes: int = 0
    manifest_commits: int = 0
    backpressure_waits: int = 0
    backpressure_seconds: float = 0.0
    spool_seconds: float = 0.0
    errors: list[str] = field(default_factory=list)


def _serialize_and_compress(snapshots: list[ValueSnapshot],
                            compress_enabled: bool, codec: str = "gzip",
                            level: int | None = None
                            ) -> tuple[bytes, int, float]:
    """Process-pool work unit: the CPU-bound half of a whole-payload write."""
    serialized = serialize_checkpoint(snapshots)
    payload = serialized.data
    if compress_enabled:
        payload = compression.compress(payload, level=level, codec=codec).data
    return payload, serialized.nbytes, serialized.serialize_seconds


def _serialize_only(snapshots: list[ValueSnapshot]) -> tuple[bytes, int, float]:
    """Process-pool work unit for chunked stores: serialization only.

    Chunk hashing decides which chunks are *new*, and only those get
    compressed — that decision needs the object store, so it stays with
    the committer; offloading compression here would compress every
    chunk, deduped or not.
    """
    serialized = serialize_checkpoint(snapshots)
    return serialized.data, serialized.nbytes, serialized.serialize_seconds


class AsyncSpool:
    """Bounded background pipeline: serialize + compress + write + index.

    Parameters
    ----------
    store:
        The :class:`~repro.storage.checkpoint_store.CheckpointStore` whose
        backend receives payloads and manifest rows.
    workers:
        Size of the worker pool.
    queue_size:
        Bound on in-flight checkpoints; ``submit`` blocks when reached.
    batch_size:
        Manifest rows buffered before one batched commit.
    mode:
        ``"thread"`` — workers do the whole pipeline; ``"process"`` — the
        serialize + gzip stage runs in a process pool (sidestepping the
        GIL) and a committer applies writes and batched commits.
    on_complete:
        Optional ``(block_id, spool_seconds, raw_nbytes)`` callback fired
        as each checkpoint finishes in the background — the adaptive
        controller uses it to refine its materialization-throughput model
        from *real* background timings.
    on_batch_commit:
        Optional zero-argument callback fired (on the committing worker,
        outside the buffer lock) after each batched manifest commit —
        the lifecycle manager's hook for periodic background GC.
    """

    _STOP = object()

    def __init__(self, store: "CheckpointStore", *, workers: int = 2,
                 queue_size: int = 64, batch_size: int = 16,
                 mode: str = "thread",
                 on_complete: Callable[[str, float, int], None] | None = None,
                 on_batch_commit: Callable[[], None] | None = None):
        if workers < 1:
            raise StorageError(f"spool workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise StorageError(
                f"spool queue_size must be >= 1, got {queue_size}")
        if batch_size < 1:
            raise StorageError(
                f"spool batch_size must be >= 1, got {batch_size}")
        if mode not in SPOOL_MODES:
            raise StorageError(
                f"spool mode must be one of {SPOOL_MODES}, got {mode!r}")
        self.store = store
        self.workers = workers
        self.queue_size = queue_size
        self.batch_size = batch_size
        self.mode = mode
        self.stats = AsyncSpoolStats()
        self._on_complete = on_complete
        self._on_batch_commit = on_batch_commit
        self._stats_lock = threading.Lock()
        self._buffer: list[CheckpointRecord] = []
        self._buffer_lock = threading.Lock()
        self._closed = False

        if mode == "thread":
            self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_size)
            self._threads = [
                threading.Thread(target=self._worker_loop, daemon=True,
                                 name=f"flor-spool-{i}")
                for i in range(workers)]
            for thread in self._threads:
                thread.start()
        else:
            self._executor: ProcessPoolExecutor | None = None
            self._slots = threading.BoundedSemaphore(queue_size)
            self._pending = 0
            self._pending_cond = threading.Condition()

    # ------------------------------------------------------------------ #
    # Hot path
    # ------------------------------------------------------------------ #
    def submit(self, block_id: str, execution_index: int,
               snapshots: list[ValueSnapshot]) -> tuple[float, int]:
        """Enqueue one checkpoint; returns (main-thread seconds, est. bytes).

        Blocks only when the bounded queue is full (backpressure).
        """
        if self._closed:
            raise StorageError("submit() on a closed AsyncSpool")
        start = monotonic()
        estimate = sum(snapshot.nbytes() for snapshot in snapshots)
        with get_tracer().span("spool.enqueue", block_id=block_id,
                               execution_index=execution_index,
                               nbytes=estimate):
            if self.mode == "thread":
                self._enqueue_bounded((block_id, execution_index, snapshots))
            else:
                self._submit_process(block_id, execution_index, snapshots)
        elapsed = monotonic() - start
        with self._stats_lock:
            self.stats.submitted += 1
        metrics = get_metrics()
        if metrics.enabled:
            depth = (self._queue.qsize() if self.mode == "thread"
                     else self._pending)
            metrics.set_gauge("spool.queue_depth", depth)
        return elapsed, estimate

    def _enqueue_bounded(self, item) -> None:
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            blocked = monotonic()
            self._queue.put(item)
            get_metrics().inc("spool.backpressure_waits")
            with self._stats_lock:
                self.stats.backpressure_waits += 1
                self.stats.backpressure_seconds += (
                    monotonic() - blocked)

    # ------------------------------------------------------------------ #
    # Thread mode
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._STOP:
                    return
                block_id, execution_index, snapshots = item
                started = monotonic()
                try:
                    # The store's write path routes to delta chunking or
                    # whole-payload encoding; either way the CPU-bound
                    # work happens here, on the worker.
                    with get_tracer().span("spool.materialize",
                                           block_id=block_id,
                                           execution_index=execution_index):
                        serialized = serialize_checkpoint(snapshots)
                        self._persist_serialized(block_id, execution_index,
                                                 serialized, started)
                except Exception as exc:
                    with self._stats_lock:
                        self.stats.errors.append(
                            f"{block_id}[{execution_index}]: {exc}")
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------ #
    # Process mode
    # ------------------------------------------------------------------ #
    def _submit_process(self, block_id, execution_index, snapshots) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        if not self._slots.acquire(blocking=False):
            blocked = monotonic()
            self._slots.acquire()
            get_metrics().inc("spool.backpressure_waits")
            with self._stats_lock:
                self.stats.backpressure_waits += 1
                self.stats.backpressure_seconds += (
                    monotonic() - blocked)
        with self._pending_cond:
            self._pending += 1
        started = monotonic()
        if self.store.chunking_active():
            # Delta path: serialize in the pool, chunk + encode on the
            # committer (chunk dedup needs the object store).
            future = self._executor.submit(_serialize_only, snapshots)
            encoded = False
        else:
            future = self._executor.submit(
                _serialize_and_compress, snapshots, self.store.compress,
                self.store.resolve_codec(), self.store.codec_level)
            encoded = True
        future.add_done_callback(
            lambda fut: self._commit_future(block_id, execution_index, fut,
                                            started, encoded))

    def _commit_future(self, block_id, execution_index, future, started,
                       encoded) -> None:
        try:
            payload, raw, serialize_seconds = future.result()
            if encoded:
                self._persist_encoded(block_id, execution_index, payload,
                                      raw, serialize_seconds, started)
            else:
                self._persist_serialized(
                    block_id, execution_index,
                    SerializedCheckpoint(data=payload, nbytes=raw,
                                         serialize_seconds=serialize_seconds),
                    started)
        except Exception as exc:
            with self._stats_lock:
                self.stats.errors.append(
                    f"{block_id}[{execution_index}]: {exc}")
        finally:
            self._slots.release()
            with self._pending_cond:
                self._pending -= 1
                self._pending_cond.notify_all()

    # ------------------------------------------------------------------ #
    # Shared persistence path: payload first, manifest row batched
    # ------------------------------------------------------------------ #
    def _persist_serialized(self, block_id: str, execution_index: int,
                            serialized: SerializedCheckpoint,
                            started: float) -> None:
        """Route one serialized payload through the store's write path."""
        record = self.store.write_payload(block_id, execution_index,
                                          serialized)
        self._finish(record, started)

    def _persist_encoded(self, block_id: str, execution_index: int,
                         payload: bytes, raw_nbytes: int,
                         serialize_seconds: float, started: float) -> None:
        """Persist a payload the process pool already encoded."""
        record = self.store.write_encoded(block_id, execution_index, payload,
                                          raw_nbytes, serialize_seconds)
        self._finish(record, started)

    def _finish(self, record: CheckpointRecord, started: float) -> None:
        spool_seconds = monotonic() - started
        with self._stats_lock:
            self.stats.completed += 1
            self.stats.raw_nbytes += record.raw_nbytes
            self.stats.stored_nbytes += record.stored_nbytes
            self.stats.spool_seconds += spool_seconds
        self._buffer_record(record)
        if self._on_complete is not None:
            try:
                self._on_complete(record.block_id, spool_seconds,
                                  record.raw_nbytes)
            except Exception as exc:  # pragma: no cover - callback bug guard
                with self._stats_lock:
                    self.stats.errors.append(f"on_complete callback: {exc}")

    def _buffer_record(self, record: CheckpointRecord) -> None:
        batch: list[CheckpointRecord] | None = None
        with self._buffer_lock:
            self._buffer.append(record)
            if len(self._buffer) >= self.batch_size:
                batch, self._buffer = self._buffer, []
        # Commit outside the buffer lock so other workers keep buffering
        # (and the post-commit lifecycle hook never stalls them).  The
        # flush() barrier still covers this: the worker's task_done /
        # pending-decrement happens after _persist returns.
        if batch:
            self._commit(batch)

    def _commit(self, batch: list[CheckpointRecord]) -> None:
        """Commit one batch of manifest rows in one backend transaction."""
        with get_tracer().span("spool.batch_commit", rows=len(batch)):
            self.store.backend.index_many(batch)
        with self._stats_lock:
            self.stats.manifest_commits += 1
            self.stats.indexed += len(batch)
        if self._on_batch_commit is not None:
            try:
                self._on_batch_commit()
            except Exception as exc:  # pragma: no cover - callback bug guard
                with self._stats_lock:
                    self.stats.errors.append(f"on_batch_commit callback: {exc}")

    # ------------------------------------------------------------------ #
    # Barriers
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Block until every submitted checkpoint is durable AND indexed."""
        with get_tracer().span("spool.flush"):
            if self.mode == "thread":
                self._queue.join()
            else:
                with self._pending_cond:
                    self._pending_cond.wait_for(lambda: self._pending == 0)
            with self._buffer_lock:
                batch, self._buffer = self._buffer, []
            if batch:
                self._commit(batch)

    def close(self) -> None:
        """Flush, then stop the worker pool.  Idempotent."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        if self.mode == "thread":
            for _ in self._threads:
                self._queue.put(self._STOP)
            for thread in self._threads:
                thread.join(timeout=30.0)
        elif self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "AsyncSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# The paper's EBS-to-S3 transfer sim
# --------------------------------------------------------------------------- #
@dataclass
class SpoolStats:
    """Aggregate statistics of one bucket spooler's lifetime."""

    objects: int = 0
    bytes_transferred: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def monthly_cost_usd(self) -> float:
        return storage_cost_per_month(self.bytes_transferred)


class BackgroundSpooler:
    """Copies checkpoint files to a bucket directory on a background thread."""

    _STOP = object()

    def __init__(self, bucket_dir: str | Path):
        self.bucket_dir = Path(bucket_dir)
        self.bucket_dir.mkdir(parents=True, exist_ok=True)
        self.stats = SpoolStats()
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._thread: threading.Thread | None = None

    def start(self) -> "BackgroundSpooler":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._drain, daemon=True,
                                        name="flor-spooler")
        self._thread.start()
        return self

    def submit(self, path: str | Path) -> None:
        """Enqueue a finished checkpoint file for transfer to the bucket."""
        self._queue.put(Path(path))

    def close(self) -> SpoolStats:
        """Flush the queue, stop the thread, and return transfer statistics."""
        if self._thread is None:
            return self.stats
        self._queue.put(self._STOP)
        self._thread.join()
        self._thread = None
        return self.stats

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            try:
                source = Path(item)
                target = self.bucket_dir / source.name
                shutil.copyfile(source, target)
                self.stats.objects += 1
                self.stats.bytes_transferred += target.stat().st_size
            except OSError as exc:
                self.stats.errors.append(f"{item}: {exc}")

    def __enter__(self) -> "BackgroundSpooler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
