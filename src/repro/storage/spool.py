"""Background spooling of checkpoints to (simulated) object storage.

The paper spools checkpoints from local EBS to an S3 bucket with a
background process (Section 6, setup).  We reproduce the same pipeline with
a background thread that gzip-compresses finished checkpoint files and
copies them into a "bucket" directory, tracking transferred bytes and the
monthly storage bill they would incur.
"""

from __future__ import annotations

import queue
import shutil
import threading
from dataclasses import dataclass, field
from pathlib import Path

from .costs import storage_cost_per_month

__all__ = ["SpoolStats", "BackgroundSpooler"]


@dataclass
class SpoolStats:
    """Aggregate statistics of one spooler's lifetime."""

    objects: int = 0
    bytes_transferred: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def monthly_cost_usd(self) -> float:
        return storage_cost_per_month(self.bytes_transferred)


class BackgroundSpooler:
    """Copies checkpoint files to a bucket directory on a background thread."""

    _STOP = object()

    def __init__(self, bucket_dir: str | Path):
        self.bucket_dir = Path(bucket_dir)
        self.bucket_dir.mkdir(parents=True, exist_ok=True)
        self.stats = SpoolStats()
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._thread: threading.Thread | None = None

    def start(self) -> "BackgroundSpooler":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._drain, daemon=True,
                                        name="flor-spooler")
        self._thread.start()
        return self

    def submit(self, path: str | Path) -> None:
        """Enqueue a finished checkpoint file for transfer to the bucket."""
        self._queue.put(Path(path))

    def close(self) -> SpoolStats:
        """Flush the queue, stop the thread, and return transfer statistics."""
        if self._thread is None:
            return self.stats
        self._queue.put(self._STOP)
        self._thread.join()
        self._thread = None
        return self.stats

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            try:
                source = Path(item)
                target = self.bucket_dir / source.name
                shutil.copyfile(source, target)
                self.stats.objects += 1
                self.stats.bytes_transferred += target.stat().st_size
            except OSError as exc:
                self.stats.errors.append(f"{item}: {exc}")

    def __enter__(self) -> "BackgroundSpooler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
