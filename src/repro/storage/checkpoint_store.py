"""The checkpoint store: one facade over pluggable storage backends.

Layout per run (local backend, the default)::

    <home>/<run_id>/
        manifest.sqlite        -- SQLite index of every checkpoint
        checkpoints/           -- one payload file per Loop End Checkpoint
            <block_id>/<execution_index>.ckpt
        source/                -- snapshot of the user's code at record time
        record.log             -- the record-phase log (user metrics)
        replay-*.log           -- per-worker replay logs

The sharded backend replaces ``manifest.sqlite`` + ``checkpoints/`` with a
``shards.json`` root manifest and ``shards/shard-<k>/`` subtrees, each a
complete local layout; the in-memory backend keeps both planes in process
memory.  See :mod:`repro.storage.backends` for the backend contract.

:class:`CheckpointStore` owns what is common to every backend: payload
compression, digests, timing measurements, JSON encoding of run metadata,
and the source-code snapshots replay needs for probe detection (sources
always live on the filesystem — they are tiny and the replayer reads them
before any backend is involved).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..exceptions import CheckpointNotFoundError, StorageError
from ..utils.hashing import digest_bytes
from . import compression
from .backends import CheckpointRecord, StorageBackend, resolve_backend
from .serializer import (SerializedCheckpoint, ValueSnapshot,
                         deserialize_checkpoint, serialize_checkpoint)

__all__ = ["CheckpointRecord", "CheckpointStore"]


class CheckpointStore:
    """Backend-routed store of Loop End Checkpoints for a single run."""

    def __init__(self, run_dir: str | Path, compress: bool = True,
                 backend: StorageBackend | str | None = None,
                 num_shards: int | None = None, dedup: bool = True):
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.source_dir = self.run_dir / "source"
        self.source_dir.mkdir(parents=True, exist_ok=True)
        self.compress = compress
        self.backend: StorageBackend = resolve_backend(
            self.run_dir, backend, num_shards=num_shards, dedup=dedup)

    @classmethod
    def for_config(cls, run_dir: str | Path, config) -> "CheckpointStore":
        """Open a store with every storage knob taken from a FlorConfig.

        The one place the config-to-store kwarg mapping lives — sessions,
        the catalog, the query engine and the lifecycle API all open
        stores through it, so a new storage knob propagates everywhere at
        once.
        """
        return cls(run_dir, compress=config.compress_checkpoints,
                   backend=config.storage_backend,
                   num_shards=config.storage_shards, dedup=config.dedup)

    # ------------------------------------------------------------------ #
    # Run metadata
    # ------------------------------------------------------------------ #
    def set_metadata(self, key: str, value) -> None:
        """Store a JSON-serializable run-level metadata value."""
        self.backend.set_metadata_json(key, json.dumps(value))

    # ``put_metadata`` mirrors the checkpoint write path's put/get naming;
    # the record close path uses it for scheduler-facing metadata.
    put_metadata = set_metadata

    def get_metadata(self, key: str, default=None):
        encoded = self.backend.get_metadata_json(key)
        if encoded is None:
            return default
        return json.loads(encoded)

    def all_metadata(self) -> dict:
        return {key: json.loads(value)
                for key, value in self.backend.all_metadata_json().items()}

    def metadata_keys(self, prefix: str = "") -> list[str]:
        """Sorted metadata keys starting with ``prefix``.

        The query engine's memo cache namespaces write-back entries under
        prefixed keys and enumerates them through this scan.
        """
        return self.backend.metadata_keys(prefix)

    # ------------------------------------------------------------------ #
    # Source snapshots (needed for probe detection on replay)
    # ------------------------------------------------------------------ #
    def save_source(self, filename: str, source: str) -> Path:
        """Snapshot the user's source code as it looked at record time."""
        target = self.source_dir / filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        return target

    def load_source(self, filename: str) -> str:
        target = self.source_dir / filename
        if not target.exists():
            raise StorageError(f"no recorded source named {filename!r} in "
                               f"{self.source_dir}")
        return target.read_text(encoding="utf-8")

    def list_sources(self) -> list[str]:
        return sorted(str(p.relative_to(self.source_dir))
                      for p in self.source_dir.rglob("*") if p.is_file())

    # ------------------------------------------------------------------ #
    # Checkpoint write path
    # ------------------------------------------------------------------ #
    def put(self, block_id: str, execution_index: int,
            snapshots: list[ValueSnapshot]) -> CheckpointRecord:
        """Serialize, (optionally) compress and persist a checkpoint."""
        serialized = serialize_checkpoint(snapshots)
        return self.put_serialized(block_id, execution_index, serialized)

    def put_serialized(self, block_id: str, execution_index: int,
                       serialized: SerializedCheckpoint) -> CheckpointRecord:
        """Persist an already-serialized checkpoint payload."""
        record = self.write_payload(block_id, execution_index, serialized)
        self.backend.index(record)
        return record

    def write_payload(self, block_id: str, execution_index: int,
                      serialized: SerializedCheckpoint) -> CheckpointRecord:
        """Compress and write one payload WITHOUT committing its manifest row.

        The async spool uses this to decouple the payload plane from
        batched manifest commits; the returned record must be passed to
        :meth:`index_records` to become visible.  Payload-before-manifest
        ordering is what keeps a crash mid-spool recoverable.
        """
        payload = serialized.data
        raw_nbytes = serialized.nbytes
        if self.compress:
            payload = compression.compress(payload).data
        stored_nbytes = len(payload)

        # One hash serves both planes: the manifest's integrity digest and
        # (when the backend dedups) the payload's content address.
        digest = digest_bytes(payload)
        start = time.perf_counter()
        location = self.backend.write_payload(block_id, execution_index,
                                              payload, digest=digest)
        write_seconds = time.perf_counter() - start

        return CheckpointRecord(
            block_id=block_id,
            execution_index=execution_index,
            path=Path(location),
            raw_nbytes=raw_nbytes,
            stored_nbytes=stored_nbytes,
            digest=digest,
            serialize_seconds=serialized.serialize_seconds,
            write_seconds=write_seconds,
            created_at=time.time(),
            payload_digest=(digest if self.backend.object_store() is not None
                            else ""),
        )

    def index_records(self, records: list[CheckpointRecord]) -> None:
        """Commit a batch of manifest rows in one backend transaction."""
        self.backend.index_many(records)

    # ------------------------------------------------------------------ #
    # Checkpoint read path
    # ------------------------------------------------------------------ #
    def contains(self, block_id: str, execution_index: int) -> bool:
        return self.backend.contains(block_id, execution_index)

    def get(self, block_id: str, execution_index: int,
            run_id: str = "?") -> list[ValueSnapshot]:
        """Load and deserialize the checkpoint for one loop execution."""
        record = self.describe(block_id, execution_index, run_id=run_id)
        payload = self.backend.read_payload(str(record.path))
        if self.compress or payload[:2] == b"\x1f\x8b":
            payload = compression.decompress(payload)
        return deserialize_checkpoint(payload)

    def describe(self, block_id: str, execution_index: int,
                 run_id: str = "?") -> CheckpointRecord:
        """Return the manifest row for one checkpoint (without loading it)."""
        record = self.backend.lookup(block_id, execution_index)
        if record is None:
            raise CheckpointNotFoundError(run_id, block_id, execution_index)
        return record

    def executions(self, block_id: str) -> list[int]:
        """Sorted execution indices that have a materialized checkpoint."""
        return self.backend.executions(block_id)

    def list_executions(self, block_id: str) -> list[int]:
        """Sorted execution indices with a materialized checkpoint.

        The replay scheduler's alignment query (which iterations can a work
        segment start after?) — routed to the backend, which may answer it
        with an index-only scan.
        """
        return self.backend.list_executions(block_id)

    def latest_execution_at_or_before(self, block_id: str,
                                      execution_index: int) -> int | None:
        """Largest memoized execution index <= ``execution_index`` (or None)."""
        return self.backend.latest_execution_at_or_before(
            block_id, execution_index)

    def blocks(self) -> list[str]:
        return self.backend.blocks()

    def records(self) -> list[CheckpointRecord]:
        return self.backend.records()

    # ------------------------------------------------------------------ #
    # Lifecycle: retention, garbage collection, footprint
    # ------------------------------------------------------------------ #
    def prune(self, policy, *, now: float | None = None):
        """Apply a :class:`~repro.storage.lifecycle.RetentionPolicy`.

        Manifest rows the policy rejects are deleted in one backend
        transaction (manifest-first); legacy per-execution payload files
        go with them, while shared content-addressed blobs wait for
        :meth:`gc` to confirm nothing else references them.
        """
        from .lifecycle import prune_store  # lazy: lifecycle imports us
        return prune_store(self, policy, now=now)

    def gc(self, *, grace_seconds: float = 0.0, dry_run: bool = False):
        """Sweep unreferenced payload blobs across this store's home.

        The mark phase spans *every* run under the home (blobs are shared
        across runs), so this is safe to call from any one store.
        """
        from .lifecycle import collect_garbage
        return collect_garbage(self.run_dir.parent,
                               grace_seconds=grace_seconds, dry_run=dry_run)

    def storage_stats(self):
        """Logical vs physical footprint of this store's home."""
        from .lifecycle import measure_storage
        return measure_storage(self.run_dir.parent)

    # ------------------------------------------------------------------ #
    # Aggregates (feed the storage-cost model)
    # ------------------------------------------------------------------ #
    def total_stored_nbytes(self) -> int:
        return self.backend.total_stored_nbytes()

    def total_raw_nbytes(self) -> int:
        return self.backend.total_raw_nbytes()

    def checkpoint_count(self) -> int:
        return self.backend.checkpoint_count()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Make every accepted write durable."""
        self.backend.flush()

    def close(self) -> None:
        """Release backend resources (reopens lazily if used again)."""
        self.backend.close()
