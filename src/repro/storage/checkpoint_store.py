"""The checkpoint store: one facade over pluggable storage backends.

Layout per run (local backend, the default)::

    <home>/<run_id>/
        manifest.sqlite        -- SQLite index of every checkpoint
        checkpoints/           -- one payload file per Loop End Checkpoint
            <block_id>/<execution_index>.ckpt
        source/                -- snapshot of the user's code at record time
        record.log             -- the record-phase log (user metrics)
        replay-*.log           -- per-worker replay logs

The sharded backend replaces ``manifest.sqlite`` + ``checkpoints/`` with a
``shards.json`` root manifest and ``shards/shard-<k>/`` subtrees, each a
complete local layout; the in-memory backend keeps both planes in process
memory.  See :mod:`repro.storage.backends` for the backend contract.

:class:`CheckpointStore` owns what is common to every backend: payload
compression, digests, timing measurements, JSON encoding of run metadata,
and the source-code snapshots replay needs for probe detection (sources
always live on the filesystem — they are tiny and the replayer reads them
before any backend is involved).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..exceptions import (CheckpointNotFoundError, SerializationError,
                          StorageError)
from ..telemetry import get_metrics, get_tracer
from ..utils.hashing import digest_bytes
from ..utils.timing import monotonic
from . import compression
from .backends import CheckpointRecord, StorageBackend, resolve_backend
from .chunking import DEFAULT_CHUNK_NBYTES, chunk_payload
from .serializer import (SerializedCheckpoint, ValueSnapshot,
                         deserialize_checkpoint, payload_segments,
                         serialize_checkpoint)

__all__ = ["CheckpointRecord", "CheckpointStore"]

#: Synthetic ``path`` prefix of chunked manifest rows: the payload has no
#: single location — the recipe's chunk digests address it.
RECIPE_LOCATION_PREFIX = "recipe:"


class CheckpointStore:
    """Backend-routed store of Loop End Checkpoints for a single run.

    ``chunking`` turns on delta checkpoints: serialized payloads split
    into content-addressed chunks (``"fixed"`` or ``"cdc"`` boundaries),
    the manifest row records the ordered chunk-digest *recipe*, and only
    chunks whose digest is new reach the object store — epoch N+1 pays
    for what changed.  The read path follows whatever layout the manifest
    row records, so any store setting replays any run.
    """

    def __init__(self, run_dir: str | Path, compress: bool = True,
                 backend: StorageBackend | str | None = None,
                 num_shards: int | None = None, dedup: bool = True,
                 chunking: str = "off",
                 chunk_nbytes: int = DEFAULT_CHUNK_NBYTES,
                 codec: str = "gzip", codec_level: int | None = None):
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.source_dir = self.run_dir / "source"
        self.source_dir.mkdir(parents=True, exist_ok=True)
        self.compress = compress
        self.chunking = chunking
        self.chunk_nbytes = chunk_nbytes
        self.codec = codec
        self.codec_level = codec_level
        #: Session wiring points for ``codec="auto"``: ``codec_chooser``
        #: maps a payload size to a codec name (the adaptive controller's
        #: cost model), ``codec_observer`` feeds measured (codec,
        #: raw_nbytes, seconds, compressed_nbytes) samples back.
        self.codec_chooser = None
        self.codec_observer = None
        self.backend: StorageBackend = resolve_backend(
            self.run_dir, backend, num_shards=num_shards, dedup=dedup)

    @classmethod
    def for_config(cls, run_dir: str | Path, config) -> "CheckpointStore":
        """Open a store with every storage knob taken from a FlorConfig.

        The one place the config-to-store kwarg mapping lives — sessions,
        the catalog, the query engine and the lifecycle API all open
        stores through it, so a new storage knob propagates everywhere at
        once.
        """
        return cls(run_dir, compress=config.compress_checkpoints,
                   backend=config.storage_backend,
                   num_shards=config.storage_shards, dedup=config.dedup,
                   chunking=config.chunking,
                   chunk_nbytes=config.chunk_nbytes,
                   codec=config.codec, codec_level=config.codec_level)

    # ------------------------------------------------------------------ #
    # Run metadata
    # ------------------------------------------------------------------ #
    def set_metadata(self, key: str, value) -> None:
        """Store a JSON-serializable run-level metadata value."""
        self.backend.set_metadata_json(key, json.dumps(value))

    # ``put_metadata`` mirrors the checkpoint write path's put/get naming;
    # the record close path uses it for scheduler-facing metadata.
    put_metadata = set_metadata

    def get_metadata(self, key: str, default=None):
        encoded = self.backend.get_metadata_json(key)
        if encoded is None:
            return default
        return json.loads(encoded)

    def update_metadata(self, key: str, update):
        """Atomically read-modify-write one metadata value.

        ``update`` maps the currently stored value (or None) to the value
        to store; the pair runs inside one backend writer transaction, so
        concurrent updaters of the same key — e.g. two query processes
        merging memoized replay values into one run — never lose each
        other's writes.  Returns the stored result.
        """
        return json.loads(self.backend.update_metadata_json(
            key, lambda encoded: json.dumps(
                update(None if encoded is None else json.loads(encoded)))))

    def all_metadata(self) -> dict:
        return {key: json.loads(value)
                for key, value in self.backend.all_metadata_json().items()}

    def metadata_keys(self, prefix: str = "") -> list[str]:
        """Sorted metadata keys starting with ``prefix``.

        The query engine's memo cache namespaces write-back entries under
        prefixed keys and enumerates them through this scan.
        """
        return self.backend.metadata_keys(prefix)

    # ------------------------------------------------------------------ #
    # Source snapshots (needed for probe detection on replay)
    # ------------------------------------------------------------------ #
    def save_source(self, filename: str, source: str) -> Path:
        """Snapshot the user's source code as it looked at record time."""
        target = self.source_dir / filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        return target

    def load_source(self, filename: str) -> str:
        target = self.source_dir / filename
        if not target.exists():
            raise StorageError(f"no recorded source named {filename!r} in "
                               f"{self.source_dir}")
        return target.read_text(encoding="utf-8")

    def list_sources(self) -> list[str]:
        return sorted(str(p.relative_to(self.source_dir))
                      for p in self.source_dir.rglob("*") if p.is_file())

    # ------------------------------------------------------------------ #
    # Checkpoint write path
    # ------------------------------------------------------------------ #
    def put(self, block_id: str, execution_index: int,
            snapshots: list[ValueSnapshot]) -> CheckpointRecord:
        """Serialize, (optionally) compress and persist a checkpoint."""
        serialized = serialize_checkpoint(snapshots)
        return self.put_serialized(block_id, execution_index, serialized)

    def put_serialized(self, block_id: str, execution_index: int,
                       serialized: SerializedCheckpoint) -> CheckpointRecord:
        """Persist an already-serialized checkpoint payload."""
        record = self.write_payload(block_id, execution_index, serialized)
        self.backend.index(record)
        return record

    def chunking_active(self) -> bool:
        """Whether new payloads of this store are written as delta chunks."""
        return (self.chunking != "off"
                and self.backend.object_store() is not None)

    def resolve_codec(self, nbytes: int = 0) -> str:
        """The concrete codec for a payload of ``nbytes`` serialized bytes.

        ``codec="auto"`` defers to the wired ``codec_chooser`` (the
        adaptive controller's per-codec cost model) and falls back to
        gzip, the paper's codec, until one is wired.
        """
        if self.codec != "auto":
            return self.codec
        if self.codec_chooser is not None:
            return self.codec_chooser(nbytes)
        return "gzip"

    def _observe_codec(self, codec: str, raw_nbytes: int, seconds: float,
                       compressed_nbytes: int) -> None:
        if self.codec_observer is not None and raw_nbytes > 0:
            self.codec_observer(codec, raw_nbytes, seconds,
                                compressed_nbytes)

    def write_payload(self, block_id: str, execution_index: int,
                      serialized: SerializedCheckpoint) -> CheckpointRecord:
        """Encode and write one payload WITHOUT committing its manifest row.

        The async spool uses this to decouple the payload plane from
        batched manifest commits; the returned record must be passed to
        :meth:`index_records` to become visible.  Payload-before-manifest
        ordering is what keeps a crash mid-spool recoverable.  Routes to
        the chunked (delta) path when chunking is on and the backend has
        an object store; otherwise the payload is stored whole.
        """
        if self.chunking_active():
            return self._write_chunked(block_id, execution_index, serialized)
        encoded = self.encode_whole(serialized.data)
        return self.write_encoded(block_id, execution_index, encoded,
                                  serialized.nbytes,
                                  serialized.serialize_seconds)

    def encode_whole(self, payload: bytes) -> bytes:
        """The stored form of a whole (non-chunked) payload.

        Public so the process-mode spool can run this CPU-bound stage in
        its worker pool and hand the result to :meth:`write_encoded`.
        """
        if not self.compress:
            return payload
        start = monotonic()
        with get_tracer().span("storage.encode", nbytes=len(payload)) as span:
            result = compression.compress(
                payload, level=self.codec_level,
                codec=self.resolve_codec(len(payload)))
            span.set(codec=result.codec)
        get_metrics().inc(f"storage.codec.{result.codec}")
        self._observe_codec(result.codec, result.raw_nbytes,
                            monotonic() - start,
                            result.compressed_nbytes)
        return result.data

    def write_encoded(self, block_id: str, execution_index: int,
                      encoded: bytes, raw_nbytes: int,
                      serialize_seconds: float) -> CheckpointRecord:
        """Write an already-encoded whole payload (no manifest commit)."""
        stored_nbytes = len(encoded)
        # One hash serves both planes: the manifest's integrity digest and
        # (when the backend dedups) the payload's content address.
        digest = digest_bytes(encoded)
        start = monotonic()
        with get_tracer().span("storage.put", block_id=block_id,
                               execution_index=execution_index,
                               nbytes=stored_nbytes):
            location = self.backend.write_payload(block_id, execution_index,
                                                  encoded, digest=digest)
        write_seconds = monotonic() - start
        get_metrics().inc("storage.bytes_stored", stored_nbytes)

        return CheckpointRecord(
            block_id=block_id,
            execution_index=execution_index,
            path=Path(location),
            raw_nbytes=raw_nbytes,
            stored_nbytes=stored_nbytes,
            digest=digest,
            serialize_seconds=serialize_seconds,
            write_seconds=write_seconds,
            created_at=time.time(),
            payload_digest=(digest if self.backend.object_store() is not None
                            else ""),
        )

    def _write_chunked(self, block_id: str, execution_index: int,
                       serialized: SerializedCheckpoint) -> CheckpointRecord:
        """The delta write path: store only chunks whose digest is new.

        Chunk digests are computed over the RAW chunk bytes (before the
        codec), so a chunk dedups no matter which codec — or codec level —
        compressed its first occurrence, and reassembly can verify every
        chunk after decompressing it.  Blobs are written before the
        manifest row referencing them exists (payload-before-manifest),
        exactly like the whole-payload path.
        """
        objects = self.backend.object_store()
        payload = serialized.data
        digest = digest_bytes(payload)
        codec = (self.resolve_codec(serialized.nbytes)
                 if self.compress else "raw")
        start = monotonic()
        span = get_tracer().span("storage.chunk", block_id=block_id,
                                 execution_index=execution_index,
                                 codec=codec)
        recipe: list[str] = []
        stored_nbytes = 0
        reused_chunks = 0
        compressed_raw = 0
        compressed_out = 0
        compress_seconds = 0.0
        with span:
            for view in chunk_payload(payload, mode=self.chunking,
                                      chunk_nbytes=self.chunk_nbytes,
                                      segments=payload_segments(payload)):
                chunk_digest = digest_bytes(view)
                recipe.append(chunk_digest)
                blob_nbytes = objects.touch(chunk_digest)
                if blob_nbytes is None:
                    # Chunk blobs are ALWAYS framed (raw codec when the store
                    # does not compress): reassembly decodes by frame id, so
                    # chunk content can never be mistaken for a codec magic.
                    encode_start = monotonic()
                    result = compression.compress(bytes(view),
                                                  level=self.codec_level,
                                                  codec=codec)
                    compress_seconds += monotonic() - encode_start
                    compressed_raw += result.raw_nbytes
                    compressed_out += result.compressed_nbytes
                    objects.put(chunk_digest, result.data)
                    blob_nbytes = result.compressed_nbytes
                else:
                    reused_chunks += 1
                stored_nbytes += blob_nbytes
            span.set(chunks=len(recipe), reused=reused_chunks)
        write_seconds = monotonic() - start
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("storage.chunks_reused", reused_chunks)
            metrics.inc("storage.chunks_new", len(recipe) - reused_chunks)
            metrics.inc("storage.bytes_stored", compressed_out)
            metrics.inc(f"storage.codec.{codec}")
        if compressed_raw:
            self._observe_codec(codec, compressed_raw, compress_seconds,
                                compressed_out)

        return CheckpointRecord(
            block_id=block_id,
            execution_index=execution_index,
            path=Path(f"{RECIPE_LOCATION_PREFIX}{len(recipe)}"),
            raw_nbytes=serialized.nbytes,
            stored_nbytes=stored_nbytes,
            digest=digest,
            serialize_seconds=serialized.serialize_seconds,
            write_seconds=write_seconds,
            created_at=time.time(),
            payload_digest="",
            recipe=",".join(recipe),
        )

    def index_records(self, records: list[CheckpointRecord]) -> None:
        """Commit a batch of manifest rows in one backend transaction."""
        self.backend.index_many(records)

    # ------------------------------------------------------------------ #
    # Checkpoint read path
    # ------------------------------------------------------------------ #
    def contains(self, block_id: str, execution_index: int) -> bool:
        return self.backend.contains(block_id, execution_index)

    def get(self, block_id: str, execution_index: int,
            run_id: str = "?") -> list[ValueSnapshot]:
        """Load and deserialize the checkpoint for one loop execution.

        Follows whatever layout the manifest row records — chunked rows
        reassemble from their recipe, whole rows read one location — so a
        store opened with any chunking/codec setting replays runs
        recorded under any other (including legacy recipe-less runs).
        """
        with get_tracer().span("storage.get", block_id=block_id,
                               execution_index=execution_index) as span:
            record = self.describe(block_id, execution_index, run_id=run_id)
            if record.is_chunked():
                payload = self._reassemble(record)
            else:
                payload = self.backend.read_payload(str(record.path))
                # Frame/gzip-magic dispatch; legacy uncompressed payloads
                # pass through untouched.
                payload = compression.decompress(payload)
            span.set(nbytes=len(payload), chunked=record.is_chunked())
            get_metrics().inc("storage.bytes_read", len(payload))
            return deserialize_checkpoint(payload)

    def _reassemble(self, record: CheckpointRecord) -> bytes:
        """Join a chunked row's payload back together, verifying each chunk.

        Chunk digests address RAW chunk bytes, so every chunk is verified
        after decoding and the joined payload is verified against the
        row's full-payload digest — a missing or corrupted blob surfaces
        as a :class:`SerializationError` naming the exact chunk.
        """
        objects = self.backend.object_store()
        where = f"{record.block_id}[{record.execution_index}]"
        if objects is None:
            raise SerializationError(
                f"checkpoint {where} is chunked but the backend has no "
                "object store (recorded with dedup, opened without?)")
        digests = record.recipe_digests()
        parts: list[bytes] = []
        for position, chunk_digest in enumerate(digests):
            try:
                blob = objects.get(chunk_digest)
            except StorageError as exc:
                raise SerializationError(
                    f"checkpoint {where} chunk {position + 1}/{len(digests)} "
                    f"is missing from the object store: {exc}") from exc
            try:
                raw = compression.decompress(blob)
            except Exception as exc:
                raise SerializationError(
                    f"checkpoint {where} chunk {position + 1}/{len(digests)} "
                    f"({chunk_digest[:12]}…) failed to decode: {exc}"
                ) from exc
            if digest_bytes(raw) != chunk_digest:
                raise SerializationError(
                    f"checkpoint {where} chunk {position + 1}/{len(digests)} "
                    f"is corrupt: content does not match digest "
                    f"{chunk_digest[:12]}…")
            parts.append(raw)
        payload = b"".join(parts)
        if digest_bytes(payload) != record.digest:
            raise SerializationError(
                f"checkpoint {where} reassembled from {len(digests)} chunks "
                "does not match its manifest digest")
        return payload

    def describe(self, block_id: str, execution_index: int,
                 run_id: str = "?") -> CheckpointRecord:
        """Return the manifest row for one checkpoint (without loading it)."""
        record = self.backend.lookup(block_id, execution_index)
        if record is None:
            raise CheckpointNotFoundError(run_id, block_id, execution_index)
        return record

    def executions(self, block_id: str) -> list[int]:
        """Sorted execution indices that have a materialized checkpoint."""
        return self.backend.executions(block_id)

    def list_executions(self, block_id: str) -> list[int]:
        """Sorted execution indices with a materialized checkpoint.

        The replay scheduler's alignment query (which iterations can a work
        segment start after?) — routed to the backend, which may answer it
        with an index-only scan.
        """
        return self.backend.list_executions(block_id)

    def latest_execution_at_or_before(self, block_id: str,
                                      execution_index: int) -> int | None:
        """Largest memoized execution index <= ``execution_index`` (or None)."""
        return self.backend.latest_execution_at_or_before(
            block_id, execution_index)

    def blocks(self) -> list[str]:
        return self.backend.blocks()

    def records(self) -> list[CheckpointRecord]:
        return self.backend.records()

    # ------------------------------------------------------------------ #
    # Lifecycle: retention, garbage collection, footprint
    # ------------------------------------------------------------------ #
    def prune(self, policy, *, now: float | None = None):
        """Apply a :class:`~repro.storage.lifecycle.RetentionPolicy`.

        Manifest rows the policy rejects are deleted in one backend
        transaction (manifest-first); legacy per-execution payload files
        go with them, while shared content-addressed blobs wait for
        :meth:`gc` to confirm nothing else references them.
        """
        from .lifecycle import prune_store  # lazy: lifecycle imports us
        return prune_store(self, policy, now=now)

    def gc(self, *, grace_seconds: float = 0.0, dry_run: bool = False):
        """Sweep unreferenced payload blobs across this store's home.

        The mark phase spans *every* run under the home (blobs are shared
        across runs), so this is safe to call from any one store.
        """
        from .lifecycle import collect_garbage
        return collect_garbage(self.run_dir.parent,
                               grace_seconds=grace_seconds, dry_run=dry_run)

    def storage_stats(self):
        """Logical vs physical footprint of this store's home."""
        from .lifecycle import measure_storage
        return measure_storage(self.run_dir.parent)

    # ------------------------------------------------------------------ #
    # Aggregates (feed the storage-cost model)
    # ------------------------------------------------------------------ #
    def total_stored_nbytes(self) -> int:
        return self.backend.total_stored_nbytes()

    def total_raw_nbytes(self) -> int:
        return self.backend.total_raw_nbytes()

    def checkpoint_count(self) -> int:
        return self.backend.checkpoint_count()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Make every accepted write durable."""
        self.backend.flush()

    def close(self) -> None:
        """Release backend resources (reopens lazily if used again)."""
        self.backend.close()
