"""The on-disk checkpoint store.

Layout per run::

    <home>/<run_id>/
        manifest.sqlite        -- SQLite index of every checkpoint
        checkpoints/           -- one payload file per Loop End Checkpoint
            <block_id>/<execution_index>.ckpt
        source/                -- snapshot of the user's code at record time
        record.log             -- the record-phase log (user metrics)
        replay-*.log           -- per-worker replay logs

The manifest is the database-flavoured heart of the store: a small SQLite
schema indexing checkpoints by ``(block_id, execution_index)`` with sizes,
timings and content digests, plus a ``runs`` table of run-level metadata.
SQLite gives us atomic writes from forked materializer children and cheap
queries at replay time ("which executions of block X are memoized?").
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import CheckpointNotFoundError, StorageError
from ..utils.hashing import digest_bytes
from . import compression
from .serializer import (SerializedCheckpoint, ValueSnapshot,
                         deserialize_checkpoint, serialize_checkpoint)

__all__ = ["CheckpointRecord", "CheckpointStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS checkpoints (
    block_id         TEXT NOT NULL,
    execution_index  INTEGER NOT NULL,
    path             TEXT NOT NULL,
    raw_nbytes       INTEGER NOT NULL,
    stored_nbytes    INTEGER NOT NULL,
    digest           TEXT NOT NULL,
    serialize_seconds REAL NOT NULL,
    write_seconds    REAL NOT NULL,
    created_at       REAL NOT NULL,
    PRIMARY KEY (block_id, execution_index)
);
CREATE TABLE IF NOT EXISTS run_metadata (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_checkpoints_block ON checkpoints (block_id);
"""


@dataclass
class CheckpointRecord:
    """One row of the checkpoint manifest."""

    block_id: str
    execution_index: int
    path: Path
    raw_nbytes: int
    stored_nbytes: int
    digest: str
    serialize_seconds: float
    write_seconds: float
    created_at: float


class CheckpointStore:
    """SQLite-indexed store of Loop End Checkpoints for a single run."""

    def __init__(self, run_dir: str | Path, compress: bool = True):
        self.run_dir = Path(run_dir)
        self.checkpoint_dir = self.run_dir / "checkpoints"
        self.source_dir = self.run_dir / "source"
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.source_dir.mkdir(parents=True, exist_ok=True)
        self.compress = compress
        self._db_path = self.run_dir / "manifest.sqlite"
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    # ------------------------------------------------------------------ #
    # SQLite plumbing
    # ------------------------------------------------------------------ #
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._db_path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        return conn

    # ------------------------------------------------------------------ #
    # Run metadata
    # ------------------------------------------------------------------ #
    def set_metadata(self, key: str, value) -> None:
        """Store a JSON-serializable run-level metadata value."""
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO run_metadata (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (key, json.dumps(value)))

    def get_metadata(self, key: str, default=None):
        with self._connect() as conn:
            row = conn.execute(
                "SELECT value FROM run_metadata WHERE key = ?", (key,)).fetchone()
        if row is None:
            return default
        return json.loads(row[0])

    def all_metadata(self) -> dict:
        with self._connect() as conn:
            rows = conn.execute("SELECT key, value FROM run_metadata").fetchall()
        return {key: json.loads(value) for key, value in rows}

    # ------------------------------------------------------------------ #
    # Source snapshots (needed for probe detection on replay)
    # ------------------------------------------------------------------ #
    def save_source(self, filename: str, source: str) -> Path:
        """Snapshot the user's source code as it looked at record time."""
        target = self.source_dir / filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        return target

    def load_source(self, filename: str) -> str:
        target = self.source_dir / filename
        if not target.exists():
            raise StorageError(f"no recorded source named {filename!r} in "
                               f"{self.source_dir}")
        return target.read_text(encoding="utf-8")

    def list_sources(self) -> list[str]:
        return sorted(str(p.relative_to(self.source_dir))
                      for p in self.source_dir.rglob("*") if p.is_file())

    # ------------------------------------------------------------------ #
    # Checkpoint write path
    # ------------------------------------------------------------------ #
    def put(self, block_id: str, execution_index: int,
            snapshots: list[ValueSnapshot]) -> CheckpointRecord:
        """Serialize, (optionally) compress and persist a checkpoint."""
        serialized = serialize_checkpoint(snapshots)
        return self.put_serialized(block_id, execution_index, serialized)

    def put_serialized(self, block_id: str, execution_index: int,
                       serialized: SerializedCheckpoint) -> CheckpointRecord:
        """Persist an already-serialized checkpoint payload."""
        payload = serialized.data
        raw_nbytes = serialized.nbytes
        if self.compress:
            result = compression.compress(payload)
            payload = result.data
        stored_nbytes = len(payload)

        block_dir = self.checkpoint_dir / _sanitize(block_id)
        block_dir.mkdir(parents=True, exist_ok=True)
        path = block_dir / f"{execution_index}.ckpt"

        start = time.perf_counter()
        path.write_bytes(payload)
        write_seconds = time.perf_counter() - start

        record = CheckpointRecord(
            block_id=block_id,
            execution_index=execution_index,
            path=path,
            raw_nbytes=raw_nbytes,
            stored_nbytes=stored_nbytes,
            digest=digest_bytes(payload),
            serialize_seconds=serialized.serialize_seconds,
            write_seconds=write_seconds,
            created_at=time.time(),
        )
        self._index(record)
        return record

    def _index(self, record: CheckpointRecord) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO checkpoints (block_id, execution_index, path, "
                "raw_nbytes, stored_nbytes, digest, serialize_seconds, "
                "write_seconds, created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(block_id, execution_index) DO UPDATE SET "
                "path=excluded.path, raw_nbytes=excluded.raw_nbytes, "
                "stored_nbytes=excluded.stored_nbytes, digest=excluded.digest, "
                "serialize_seconds=excluded.serialize_seconds, "
                "write_seconds=excluded.write_seconds, "
                "created_at=excluded.created_at",
                (record.block_id, record.execution_index, str(record.path),
                 record.raw_nbytes, record.stored_nbytes, record.digest,
                 record.serialize_seconds, record.write_seconds,
                 record.created_at))

    # ------------------------------------------------------------------ #
    # Checkpoint read path
    # ------------------------------------------------------------------ #
    def contains(self, block_id: str, execution_index: int) -> bool:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM checkpoints WHERE block_id = ? AND "
                "execution_index = ?", (block_id, execution_index)).fetchone()
        return row is not None

    def get(self, block_id: str, execution_index: int,
            run_id: str = "?") -> list[ValueSnapshot]:
        """Load and deserialize the checkpoint for one loop execution."""
        record = self.describe(block_id, execution_index, run_id=run_id)
        payload = Path(record.path).read_bytes()
        if self.compress or payload[:2] == b"\x1f\x8b":
            payload = compression.decompress(payload)
        return deserialize_checkpoint(payload)

    def describe(self, block_id: str, execution_index: int,
                 run_id: str = "?") -> CheckpointRecord:
        """Return the manifest row for one checkpoint (without loading it)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT block_id, execution_index, path, raw_nbytes, "
                "stored_nbytes, digest, serialize_seconds, write_seconds, "
                "created_at FROM checkpoints WHERE block_id = ? AND "
                "execution_index = ?", (block_id, execution_index)).fetchone()
        if row is None:
            raise CheckpointNotFoundError(run_id, block_id, execution_index)
        return CheckpointRecord(
            block_id=row[0], execution_index=row[1], path=Path(row[2]),
            raw_nbytes=row[3], stored_nbytes=row[4], digest=row[5],
            serialize_seconds=row[6], write_seconds=row[7], created_at=row[8])

    def executions(self, block_id: str) -> list[int]:
        """Sorted execution indices that have a materialized checkpoint."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT execution_index FROM checkpoints WHERE block_id = ? "
                "ORDER BY execution_index", (block_id,)).fetchall()
        return [row[0] for row in rows]

    def latest_execution_at_or_before(self, block_id: str,
                                      execution_index: int) -> int | None:
        """Largest memoized execution index <= ``execution_index`` (or None)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT MAX(execution_index) FROM checkpoints WHERE "
                "block_id = ? AND execution_index <= ?",
                (block_id, execution_index)).fetchone()
        return row[0] if row and row[0] is not None else None

    def blocks(self) -> list[str]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT DISTINCT block_id FROM checkpoints ORDER BY block_id"
            ).fetchall()
        return [row[0] for row in rows]

    def records(self) -> list[CheckpointRecord]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT block_id, execution_index, path, raw_nbytes, "
                "stored_nbytes, digest, serialize_seconds, write_seconds, "
                "created_at FROM checkpoints ORDER BY block_id, "
                "execution_index").fetchall()
        return [CheckpointRecord(
            block_id=row[0], execution_index=row[1], path=Path(row[2]),
            raw_nbytes=row[3], stored_nbytes=row[4], digest=row[5],
            serialize_seconds=row[6], write_seconds=row[7], created_at=row[8])
            for row in rows]

    # ------------------------------------------------------------------ #
    # Aggregates (feed the storage-cost model)
    # ------------------------------------------------------------------ #
    def total_stored_nbytes(self) -> int:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT COALESCE(SUM(stored_nbytes), 0) FROM checkpoints"
            ).fetchone()
        return int(row[0])

    def total_raw_nbytes(self) -> int:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT COALESCE(SUM(raw_nbytes), 0) FROM checkpoints"
            ).fetchone()
        return int(row[0])

    def checkpoint_count(self) -> int:
        with self._connect() as conn:
            row = conn.execute("SELECT COUNT(*) FROM checkpoints").fetchone()
        return int(row[0])


def _sanitize(block_id: str) -> str:
    """Make a block id safe to use as a directory name."""
    return "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in block_id)
