"""Checkpoint payload serialization.

A Loop End Checkpoint is a mapping from variable names to *snapshots* of
their values.  Objects that expose the ``state_dict`` protocol (torchlike
modules, optimizers and schedulers) are snapshotted through it; everything
else is deep-copied and pickled.  The serializer also measures payload
sizes and serialization time, both of which feed the adaptive-checkpointing
controller and the storage-cost model.
"""

from __future__ import annotations

import copy
import pickle
import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import SerializationError

__all__ = ["ValueSnapshot", "SerializedCheckpoint", "snapshot_value",
           "restore_value", "serialize_checkpoint", "deserialize_checkpoint"]

#: Snapshot kinds, recorded so restore knows how to apply the payload.
KIND_STATE_DICT = "state_dict"
KIND_PICKLE = "pickle"


@dataclass
class ValueSnapshot:
    """A serializable snapshot of one variable in a checkpoint."""

    name: str
    kind: str
    payload: object

    def nbytes(self) -> int:
        """Approximate size of this snapshot in bytes."""
        if isinstance(self.payload, np.ndarray):
            return int(self.payload.nbytes)
        if isinstance(self.payload, dict):
            return sum(
                value.nbytes if isinstance(value, np.ndarray) else 64
                for value in _flatten(self.payload))
        return len(pickle.dumps(self.payload, protocol=pickle.HIGHEST_PROTOCOL))


def _flatten(mapping: dict):
    for value in mapping.values():
        if isinstance(value, dict):
            yield from _flatten(value)
        else:
            yield value


@dataclass
class SerializedCheckpoint:
    """A fully serialized checkpoint ready to be written to disk."""

    data: bytes
    nbytes: int
    serialize_seconds: float


def snapshot_value(name: str, value) -> ValueSnapshot:
    """Snapshot one Python value.

    Objects with a ``state_dict()`` method are captured through it — this is
    the "lean" part of lean checkpointing: for a model we keep arrays of
    weights, not the full object graph of the module tree.
    """
    state_dict = getattr(value, "state_dict", None)
    if callable(state_dict):
        return ValueSnapshot(name=name, kind=KIND_STATE_DICT, payload=state_dict())
    try:
        return ValueSnapshot(name=name, kind=KIND_PICKLE,
                             payload=copy.deepcopy(value))
    except Exception as exc:
        raise SerializationError(
            f"value {name!r} of type {type(value).__name__} cannot be "
            f"checkpointed: {exc}") from exc


def restore_value(snapshot: ValueSnapshot, live_value=None):
    """Apply a snapshot.

    If ``live_value`` supports ``load_state_dict`` and the snapshot is a
    state dict, the restoration happens *in place* (the paper's side-effect
    restoration) and ``live_value`` is returned.  Otherwise the snapshotted
    copy is returned for the caller to rebind.
    """
    if snapshot.kind == KIND_STATE_DICT and live_value is not None:
        loader = getattr(live_value, "load_state_dict", None)
        if callable(loader):
            loader(snapshot.payload)
            return live_value
    return copy.deepcopy(snapshot.payload)


def serialize_checkpoint(snapshots: list[ValueSnapshot]) -> SerializedCheckpoint:
    """Pickle a list of snapshots into one byte payload, timing the work."""
    start = time.perf_counter()
    try:
        data = pickle.dumps(snapshots, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SerializationError(f"cannot serialize checkpoint: {exc}") from exc
    elapsed = time.perf_counter() - start
    return SerializedCheckpoint(data=data, nbytes=len(data),
                                serialize_seconds=elapsed)


def deserialize_checkpoint(data: bytes) -> list[ValueSnapshot]:
    """Inverse of :func:`serialize_checkpoint`."""
    try:
        snapshots = pickle.loads(data)
    except Exception as exc:
        raise SerializationError(f"cannot deserialize checkpoint: {exc}") from exc
    if not isinstance(snapshots, list):
        raise SerializationError(
            f"corrupt checkpoint payload: expected list, got {type(snapshots)}")
    return snapshots
