"""Checkpoint payload serialization.

A Loop End Checkpoint is a mapping from variable names to *snapshots* of
their values.  Objects that expose the ``state_dict`` protocol (torchlike
modules, optimizers and schedulers) are snapshotted through it; bare
``np.ndarray`` values are snapshotted as array copies; everything else is
pickled once at capture time — pickling already copies, so there is no
separate deepcopy pass, and a value mutated between capture and the spool's
background write can no longer corrupt the payload.

Serialized checkpoints use a framed format (``FLS2``) built on pickle
protocol 5: ndarray leaves travel as out-of-band buffers appended after the
pickle head, so large tensors go straight to chunkable bytes with no pickle
detour, and :func:`payload_segments` exposes the buffer boundaries so the
chunker can restart content-defined boundaries per tensor.
:func:`deserialize_checkpoint` reads both the frame and legacy (plain
pickle) payloads.
"""

from __future__ import annotations

import copy
import pickle
import struct
from dataclasses import dataclass

import numpy as np

from ..exceptions import SerializationError
from ..telemetry import get_tracer
from ..utils.timing import monotonic

__all__ = ["ValueSnapshot", "SerializedCheckpoint", "snapshot_value",
           "restore_value", "serialize_checkpoint", "deserialize_checkpoint",
           "payload_segments"]

#: Snapshot kinds, recorded so restore knows how to apply the payload.
KIND_STATE_DICT = "state_dict"
KIND_PICKLE = "pickle"
KIND_ARRAY = "array"

#: Magic of the framed serialized-checkpoint format (v2).
SERIALIZED_MAGIC = b"FLS2"

#: Frame head: magic + uint32 pickle-head length + uint32 buffer count.
_FRAME_HEAD = struct.Struct("<4sII")

_UNSET = object()


class ValueSnapshot:
    """A serializable snapshot of one variable in a checkpoint.

    Pickle-kind snapshots hold their value as capture-time pickled bytes;
    ``payload`` lazily decodes (and caches) the value, so tests and tools
    that inspect snapshots see the familiar object while the stored form
    is immutable from the moment of capture.
    """

    def __init__(self, name: str, kind: str, payload=_UNSET, *,
                 pickled: bytes | None = None):
        self.name = name
        self.kind = kind
        self._nbytes: int | None = None
        if pickled is not None:
            self._pickled: bytes | None = pickled
            self._payload = _UNSET
            return
        if payload is _UNSET:
            raise SerializationError(
                f"snapshot {name!r} needs a payload or pickled bytes")
        if kind == KIND_PICKLE:
            try:
                self._pickled = pickle.dumps(
                    payload, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise SerializationError(
                    f"value {name!r} of type {type(payload).__name__} "
                    f"cannot be checkpointed: {exc}") from exc
            self._payload = _UNSET
        else:
            self._pickled = None
            self._payload = payload

    @property
    def payload(self):
        """The snapshotted value (decoded lazily for pickle-kind)."""
        if self._payload is _UNSET:
            self._payload = pickle.loads(self._pickled)
        return self._payload

    def fresh_payload(self):
        """A copy of the value safe to hand to the caller to mutate."""
        if self._pickled is not None:
            return pickle.loads(self._pickled)
        return copy.deepcopy(self.payload)

    def nbytes(self) -> int:
        """Size of this snapshot in bytes (computed once, then cached)."""
        if self._nbytes is None:
            self._nbytes = self._measure()
        return self._nbytes

    def _measure(self) -> int:
        if self._pickled is not None:
            return len(self._pickled)
        payload = self.payload
        if isinstance(payload, np.ndarray):
            return int(payload.nbytes)
        if isinstance(payload, dict):
            return sum(_leaf_nbytes(value) for value in _flatten(payload))
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    # -- pickling (the FLS2 head pickles snapshots themselves) ------------
    def __getstate__(self):
        if self._pickled is not None:
            return {"name": self.name, "kind": self.kind,
                    "pickled": self._pickled}
        return {"name": self.name, "kind": self.kind, "payload": self.payload}

    def __setstate__(self, state):
        self.name = state["name"]
        self.kind = state["kind"]
        self._nbytes = None
        if "pickled" in state:
            self._pickled = state["pickled"]
            self._payload = _UNSET
        else:
            # Also the legacy decode path: pre-frame checkpoints pickled
            # the old dataclass, whose state is {name, kind, payload}.
            self._pickled = None
            self._payload = state["payload"]

    def __repr__(self):
        return (f"ValueSnapshot(name={self.name!r}, kind={self.kind!r}, "
                f"nbytes={self.nbytes()})")


def _leaf_nbytes(value) -> int:
    """Honest size of one state-dict leaf."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (bool, int, float, complex, type(None))):
        return 8
    return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def _flatten(mapping: dict):
    for value in mapping.values():
        if isinstance(value, dict):
            yield from _flatten(value)
        else:
            yield value


@dataclass
class SerializedCheckpoint:
    """A fully serialized checkpoint ready to be written to disk."""

    data: bytes
    nbytes: int
    serialize_seconds: float


def snapshot_value(name: str, value) -> ValueSnapshot:
    """Snapshot one Python value.

    Objects with a ``state_dict()`` method are captured through it — this is
    the "lean" part of lean checkpointing: for a model we keep arrays of
    weights, not the full object graph of the module tree.  Bare ndarrays
    are copied (buffer-protocol serialization needs no pickle); everything
    else is pickled once, right here, so later mutation of the live value
    cannot reach the snapshot.
    """
    state_dict = getattr(value, "state_dict", None)
    if callable(state_dict):
        return ValueSnapshot(name=name, kind=KIND_STATE_DICT,
                             payload=state_dict())
    if isinstance(value, np.ndarray):
        return ValueSnapshot(name=name, kind=KIND_ARRAY,
                             payload=np.array(value, copy=True))
    return ValueSnapshot(name=name, kind=KIND_PICKLE, payload=value)


def restore_value(snapshot: ValueSnapshot, live_value=None):
    """Apply a snapshot.

    If ``live_value`` supports ``load_state_dict`` and the snapshot is a
    state dict, the restoration happens *in place* (the paper's side-effect
    restoration) and ``live_value`` is returned.  Otherwise a fresh copy of
    the snapshotted value is returned for the caller to rebind.
    """
    if snapshot.kind == KIND_STATE_DICT and live_value is not None:
        loader = getattr(live_value, "load_state_dict", None)
        if callable(loader):
            loader(snapshot.payload)
            return live_value
    if snapshot.kind == KIND_ARRAY:
        # Deserialized arrays may be read-only views into the payload
        # buffer; the caller gets a writable copy.
        return np.array(snapshot.payload, copy=True)
    return snapshot.fresh_payload()


def _collect_buffer(buffers: list, pickle_buffer) -> bool:
    """Protocol-5 buffer callback: out-of-band when contiguous."""
    try:
        buffers.append(pickle_buffer.raw())
    except BufferError:
        return True  # non-contiguous: keep it in-band
    return False


def serialize_checkpoint(snapshots: list["ValueSnapshot"]
                         ) -> SerializedCheckpoint:
    """Serialize snapshots into one framed byte payload, timing the work.

    ndarray leaves leave the pickle stream as out-of-band protocol-5
    buffers, concatenated after the pickle head::

        FLS2 | u32 head_len | u32 nbuffers | nbuffers * u64 buf_len
             | head | buffer_0 | ... | buffer_{n-1}

    The single ``b"".join`` is the only copy of the tensor bytes on this
    path (the seed pickled a deepcopy — two copies per tensor).
    """
    start = monotonic()
    with get_tracer().span("storage.serialize",
                           values=len(snapshots)) as span:
        buffers: list = []
        try:
            head = pickle.dumps(snapshots, protocol=5,
                                buffer_callback=lambda pb:
                                _collect_buffer(buffers, pb))
        except Exception as exc:
            raise SerializationError(
                f"cannot serialize checkpoint: {exc}") from exc
        lengths = struct.pack(f"<{len(buffers)}Q",
                              *(len(memoryview(buffer)) for buffer in buffers))
        data = b"".join([_FRAME_HEAD.pack(SERIALIZED_MAGIC, len(head),
                                          len(buffers)), lengths, head,
                         *buffers])
        span.set(nbytes=len(data))
    elapsed = monotonic() - start
    return SerializedCheckpoint(data=data, nbytes=len(data),
                                serialize_seconds=elapsed)


def _parse_frame(data) -> tuple[bytes, list[memoryview]]:
    """Split an FLS2 payload into its pickle head and buffer views."""
    view = memoryview(data)
    try:
        magic, head_len, nbuffers = _FRAME_HEAD.unpack_from(view, 0)
        offset = _FRAME_HEAD.size
        lengths = struct.unpack_from(f"<{nbuffers}Q", view, offset)
        offset += 8 * nbuffers
        head = bytes(view[offset:offset + head_len])
        if len(head) != head_len:
            raise ValueError("truncated pickle head")
        offset += head_len
        buffers: list[memoryview] = []
        for length in lengths:
            buffer = view[offset:offset + length]
            if len(buffer) != length:
                raise ValueError("truncated buffer section")
            buffers.append(buffer)
            offset += length
        if offset != len(view):
            raise ValueError(f"{len(view) - offset} trailing bytes")
    except (struct.error, ValueError) as exc:
        raise SerializationError(
            f"corrupt framed checkpoint payload: {exc}") from exc
    return head, buffers


def payload_segments(data) -> list[tuple[int, int]]:
    """``(offset, length)`` spans of a serialized payload's natural parts.

    For framed payloads: one span for the frame header + pickle head, then
    one per out-of-band buffer.  Chunkers restart boundaries at these
    offsets so a tensor whose neighbours changed length still produces the
    same chunks (and therefore dedups) across epochs.  Legacy payloads are
    a single span.
    """
    view = memoryview(data)
    if bytes(view[:4]) != SERIALIZED_MAGIC:
        return [(0, len(view))] if len(view) else []
    try:
        _, head_len, nbuffers = _FRAME_HEAD.unpack_from(view, 0)
        lengths = struct.unpack_from(f"<{nbuffers}Q", view, _FRAME_HEAD.size)
    except struct.error as exc:
        raise SerializationError(
            f"corrupt framed checkpoint payload: {exc}") from exc
    segments = [(0, _FRAME_HEAD.size + 8 * nbuffers + head_len)]
    offset = segments[0][1]
    for length in lengths:
        segments.append((offset, length))
        offset += length
    return segments


def deserialize_checkpoint(data: bytes) -> list[ValueSnapshot]:
    """Inverse of :func:`serialize_checkpoint` (frame or legacy pickle).

    Frame buffers are handed to pickle as zero-copy views into ``data``;
    deserialized arrays may therefore be read-only — ``restore_value``
    and ``load_state_dict`` copy on apply.
    """
    if bytes(memoryview(data)[:4]) == SERIALIZED_MAGIC:
        head, buffers = _parse_frame(data)
        try:
            snapshots = pickle.loads(head, buffers=buffers)
        except Exception as exc:
            raise SerializationError(
                f"cannot deserialize checkpoint: {exc}") from exc
    else:
        try:
            snapshots = pickle.loads(data)
        except Exception as exc:
            raise SerializationError(
                f"cannot deserialize checkpoint: {exc}") from exc
    if not isinstance(snapshots, list):
        raise SerializationError(
            f"corrupt checkpoint payload: expected list, got {type(snapshots)}")
    return snapshots
