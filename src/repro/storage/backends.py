"""Pluggable checkpoint storage backends.

A backend owns the two planes of the checkpoint store:

* the **payload plane** — opaque byte blobs, one per Loop End Checkpoint,
  addressed by an opaque *location* string the backend hands out, and
* the **manifest plane** — the index of checkpoints by
  ``(block_id, execution_index)`` with sizes, timings and digests, plus a
  small run-metadata table.

:class:`~repro.storage.checkpoint_store.CheckpointStore` routes every read
and write through this interface, so the rest of the system (sessions,
materializers, the replayer, the spool) never touches SQLite or the
filesystem directly.  Three implementations ship:

``local``
    The original single-directory layout: one ``manifest.sqlite`` plus a
    ``checkpoints/`` payload tree.  Reuses one WAL-mode connection per
    process (reopening automatically after ``fork``) and commits batched
    inserts in a single transaction.
``memory``
    Everything in process memory — for tests and benchmarks.  Backends are
    registered per run directory so "reopening" the store in the same
    process attaches to the same data.
``sharded``
    Partitions checkpoints across ``num_shards`` local backends by
    ``hash(block_id) % num_shards``, one manifest per shard, so concurrent
    writers (spool workers, replay workers) contend on different SQLite
    files.  The shard count is persisted in ``shards.json`` and wins over
    whatever a reopening caller asks for.

The durability contract every backend honours: a payload is written
*before* its manifest row is committed, so the manifest never references a
missing payload (crash-mid-spool leaves at most orphaned payload files).

When dedup is enabled (the default), the payload plane is routed through a
content-addressed object store shared by every run under the same Flor
home (see :mod:`repro.storage.objectstore`): one blob per payload digest,
with reference counts *derived* from the manifest rows, and the lifecycle
layer's GC sweeping blobs no manifest references any more.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from ..exceptions import StorageError
from ..utils.hashing import digest_bytes, stable_hash
from .objectstore import (FileObjectStore, MemoryObjectStore,
                          PayloadObjectStore, default_objects_dir)

__all__ = [
    "BACKEND_NAMES", "DEFAULT_NUM_SHARDS", "CheckpointRecord",
    "StorageBackend", "LocalSQLiteBackend", "InMemoryBackend",
    "ShardedSQLiteBackend", "resolve_backend",
    "registered_memory_backends",
]

#: Backend names accepted by the configuration layer.
BACKEND_NAMES = ("local", "memory", "sharded")

#: Shard count used when a sharded backend is requested without one.
DEFAULT_NUM_SHARDS = 4

#: Filename of the sharded backend's root manifest (also the sniffing key
#: that lets a reopening store detect a sharded layout).
SHARD_MANIFEST_NAME = "shards.json"


@dataclass
class CheckpointRecord:
    """One row of the checkpoint manifest."""

    block_id: str
    execution_index: int
    path: Path
    raw_nbytes: int
    stored_nbytes: int
    digest: str
    serialize_seconds: float
    write_seconds: float
    created_at: float
    #: Content address of the stored payload when it lives whole in the
    #: shared object store; empty for legacy per-execution payload files
    #: (pre-dedup runs and ``dedup=False`` stores), which GC leaves
    #: untouched, and for chunked rows (whose blobs the recipe names).
    payload_digest: str = ""
    #: Delta checkpoints: comma-joined ordered chunk digests when the
    #: payload is stored as content-addressed chunks.  Empty for whole
    #: payloads.  GC refcounting traces these alongside ``payload_digest``.
    recipe: str = ""

    def recipe_digests(self) -> list[str]:
        """Ordered chunk digests of a chunked row ([] for whole payloads)."""
        return self.recipe.split(",") if self.recipe else []

    def is_chunked(self) -> bool:
        return bool(self.recipe)

    def is_legacy_payload(self) -> bool:
        """Whether the row points at a per-execution file outside GC's remit."""
        return not self.payload_digest and not self.recipe


class StorageBackend:
    """Interface every checkpoint storage backend implements."""

    name = "abstract"

    # -- payload plane ----------------------------------------------------
    def write_payload(self, block_id: str, execution_index: int,
                      payload: bytes, *, digest: str | None = None) -> str:
        """Durably store one payload and return its location string.

        ``digest`` is the payload's content hash when the caller already
        computed it (the store and spool hash every payload for the
        manifest anyway); dedup-enabled backends use it as the content
        address instead of hashing a second time.
        """
        raise NotImplementedError

    def read_payload(self, location: str) -> bytes:
        raise NotImplementedError

    def discard_payload(self, location: str) -> int:
        """Delete one *legacy* (per-execution) payload; returns bytes freed.

        Content-addressed blobs are never deleted through this — they may
        be shared — only by the lifecycle GC once unreferenced.
        """
        return 0

    def object_store(self) -> PayloadObjectStore | None:
        """The content-addressed store payloads dedup into (None = legacy)."""
        return None

    # -- manifest plane ---------------------------------------------------
    def index(self, record: CheckpointRecord) -> None:
        """Commit one manifest row (upsert)."""
        self.index_many([record])

    def index_many(self, records: Sequence[CheckpointRecord]) -> None:
        """Commit a batch of manifest rows in one transaction."""
        raise NotImplementedError

    def delete_many(self, keys: Sequence[tuple[str, int]]
                    ) -> list[CheckpointRecord]:
        """Delete manifest rows by ``(block_id, execution_index)`` key.

        Returns the rows that existed and were deleted.  This is the
        *manifest-first* half of retention: rows disappear in one
        transaction, and only afterwards may payloads be discarded
        (legacy files by the caller, shared blobs by GC) — so a crash
        anywhere in between leaves orphaned payloads, never dangling rows.
        """
        raise NotImplementedError

    def referenced_digests(self) -> dict[str, int]:
        """``payload_digest -> manifest row count`` (the derived refcounts).

        Derived from the manifest rather than stored, so it is
        transactionally consistent with the rows by construction; the
        lifecycle GC unions these across every run under a home before
        sweeping the shared object store.
        """
        raise NotImplementedError

    def lookup(self, block_id: str, execution_index: int
               ) -> CheckpointRecord | None:
        raise NotImplementedError

    def contains(self, block_id: str, execution_index: int) -> bool:
        return self.lookup(block_id, execution_index) is not None

    def executions(self, block_id: str) -> list[int]:
        raise NotImplementedError

    def list_executions(self, block_id: str) -> list[int]:
        """Sorted execution indices with a materialized checkpoint.

        The replay scheduler's query: which iterations of ``block_id`` did
        the adaptive controller *actually* materialize?  Alias of
        :meth:`executions`; backends may override with a cheaper form.
        """
        return self.executions(block_id)

    def latest_execution_at_or_before(self, block_id: str,
                                      execution_index: int) -> int | None:
        raise NotImplementedError

    def blocks(self) -> list[str]:
        raise NotImplementedError

    def records(self) -> list[CheckpointRecord]:
        raise NotImplementedError

    def checkpoint_count(self) -> int:
        raise NotImplementedError

    def total_stored_nbytes(self) -> int:
        raise NotImplementedError

    def total_raw_nbytes(self) -> int:
        raise NotImplementedError

    # -- run metadata (values are already-encoded JSON strings) -----------
    def set_metadata_json(self, key: str, value_json: str) -> None:
        raise NotImplementedError

    def get_metadata_json(self, key: str) -> str | None:
        raise NotImplementedError

    def update_metadata_json(self, key: str,
                             update: "Callable[[str | None], str]") -> str:
        """Atomic read-modify-write of one metadata value.

        ``update`` receives the currently stored JSON string (or None) and
        returns the JSON string to store; the read and the write happen
        under one writer transaction, so two concurrent updaters — e.g.
        two query processes writing memoized replay values back to the
        same run — serialize instead of losing each other's merge.  The
        stored result is returned.  ``update`` must be pure: a backend
        may re-invoke it if its transaction has to retry.
        """
        raise NotImplementedError

    def all_metadata_json(self) -> dict[str, str]:
        raise NotImplementedError

    def metadata_keys(self, prefix: str = "") -> list[str]:
        """Sorted metadata keys, optionally restricted to a prefix.

        The hindsight query engine namespaces its write-back entries under
        prefixed keys (``memo:<digest>``); listing by prefix lets it
        enumerate memoized value sets without decoding every value.  The
        default implementation filters :meth:`all_metadata_json`; SQLite
        backends override it with an index-only scan.
        """
        return sorted(key for key in self.all_metadata_json()
                      if key.startswith(prefix))

    # -- lifecycle --------------------------------------------------------
    def flush(self) -> None:
        """Make every accepted write durable."""

    def close(self) -> None:
        """Release resources.  The backend reopens lazily if used again."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS checkpoints (
    block_id         TEXT NOT NULL,
    execution_index  INTEGER NOT NULL,
    path             TEXT NOT NULL,
    raw_nbytes       INTEGER NOT NULL,
    stored_nbytes    INTEGER NOT NULL,
    digest           TEXT NOT NULL,
    serialize_seconds REAL NOT NULL,
    write_seconds    REAL NOT NULL,
    created_at       REAL NOT NULL,
    payload_digest   TEXT NOT NULL DEFAULT '',
    recipe           TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (block_id, execution_index)
);
CREATE TABLE IF NOT EXISTS run_metadata (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_checkpoints_block ON checkpoints (block_id);
"""

_UPSERT = (
    "INSERT INTO checkpoints (block_id, execution_index, path, raw_nbytes, "
    "stored_nbytes, digest, serialize_seconds, write_seconds, created_at, "
    "payload_digest, recipe) "
    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
    "ON CONFLICT(block_id, execution_index) DO UPDATE SET "
    "path=excluded.path, raw_nbytes=excluded.raw_nbytes, "
    "stored_nbytes=excluded.stored_nbytes, digest=excluded.digest, "
    "serialize_seconds=excluded.serialize_seconds, "
    "write_seconds=excluded.write_seconds, created_at=excluded.created_at, "
    "payload_digest=excluded.payload_digest, recipe=excluded.recipe")

_RECORD_COLUMNS = ("block_id, execution_index, path, raw_nbytes, "
                   "stored_nbytes, digest, serialize_seconds, write_seconds, "
                   "created_at, payload_digest, recipe")


def _row_to_record(row) -> CheckpointRecord:
    return CheckpointRecord(
        block_id=row[0], execution_index=row[1], path=Path(row[2]),
        raw_nbytes=row[3], stored_nbytes=row[4], digest=row[5],
        serialize_seconds=row[6], write_seconds=row[7], created_at=row[8],
        payload_digest=row[9], recipe=row[10])


def sanitize_block_id(block_id: str) -> str:
    """Make a block id safe to use as a directory name."""
    return "".join(ch if ch.isalnum() or ch in "-_." else "_"
                   for ch in block_id)


class LocalSQLiteBackend(StorageBackend):
    """Single-directory backend: one SQLite manifest + a payload tree.

    One connection is opened per process and reused for every operation
    (the seed opened a fresh connection per call).  The connection runs in
    WAL mode so readers never block the writer; a thread lock serializes
    access from the training thread and background spool workers, and the
    connection is transparently reopened in children after ``fork`` (fork
    materialization and parallel replay both fork with a live store).
    """

    name = "local"

    def __init__(self, root_dir: str | Path,
                 object_store: PayloadObjectStore | None = None,
                 dedup: bool = True):
        self.root_dir = Path(root_dir)
        self.checkpoint_dir = self.root_dir / "checkpoints"
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        # Payloads dedup into the object store shared by every run under
        # the same home (= the run dir's parent), so identical checkpoints
        # across runs cost one blob.  ``dedup=False`` keeps the legacy
        # one-file-per-execution layout.
        if object_store is not None:
            self._objects: PayloadObjectStore | None = object_store
        elif dedup:
            self._objects = FileObjectStore.for_dir(
                default_objects_dir(self.root_dir.parent))
        else:
            self._objects = None
        self._db_path = self.root_dir / "manifest.sqlite"
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None
        with self._lock:
            conn = self._connection()
            conn.executescript(_SCHEMA)
            self._migrate(conn)
            conn.commit()

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Bring an older manifest up to the current schema in place."""
        columns = {row[1] for row in
                   conn.execute("PRAGMA table_info(checkpoints)")}
        if "payload_digest" not in columns:  # pre-dedup manifests
            conn.execute("ALTER TABLE checkpoints ADD COLUMN "
                         "payload_digest TEXT NOT NULL DEFAULT ''")
        if "recipe" not in columns:  # pre-delta-checkpoint manifests
            conn.execute("ALTER TABLE checkpoints ADD COLUMN "
                         "recipe TEXT NOT NULL DEFAULT ''")

    def _connection(self) -> sqlite3.Connection:
        """The process-wide connection, (re)opened lazily and after fork."""
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            # After fork the inherited connection object must not be used
            # (or even closed) in the child; just drop the reference.
            self._conn = sqlite3.connect(self._db_path, timeout=30.0,
                                         check_same_thread=False)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            # Shared homes see cross-process contention: a GC pass opens
            # other runs' manifests to mark references while their owners
            # commit batches.  busy_timeout makes SQLite retry-wait at
            # the C level instead of surfacing "database is locked" to a
            # writer mid-record (the connect-level timeout only covers
            # acquiring the initial lock, not later lock upgrades).
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn_pid = pid
        return self._conn

    def _query(self, sql: str, params: tuple = ()):
        with self._lock:
            return self._connection().execute(sql, params).fetchall()

    # -- payload plane ----------------------------------------------------
    def payload_location(self, block_id: str, execution_index: int) -> Path:
        return (self.checkpoint_dir / sanitize_block_id(block_id)
                / f"{execution_index}.ckpt")

    def write_payload(self, block_id, execution_index, payload, *,
                      digest=None):
        if self._objects is not None:
            return self._objects.put(digest or digest_bytes(payload), payload)
        path = self.payload_location(block_id, execution_index)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        return str(path)

    def read_payload(self, location):
        return Path(location).read_bytes()

    def discard_payload(self, location):
        path = Path(location)
        try:
            path.relative_to(self.checkpoint_dir)
        except ValueError:
            # Not a legacy per-execution file of this backend (it is a
            # shared content-addressed blob, or another run's file) —
            # only GC may remove those.
            return 0
        try:
            nbytes = path.stat().st_size
            path.unlink()
            return nbytes
        except FileNotFoundError:
            return 0

    def object_store(self):
        return self._objects

    # -- manifest plane ---------------------------------------------------
    def index_many(self, records):
        if not records:
            return
        rows = [(r.block_id, r.execution_index, str(r.path), r.raw_nbytes,
                 r.stored_nbytes, r.digest, r.serialize_seconds,
                 r.write_seconds, r.created_at, r.payload_digest, r.recipe)
                for r in records]
        with self._lock:
            conn = self._connection()
            with conn:  # one transaction for the whole batch
                conn.executemany(_UPSERT, rows)

    # Keys per chunked row-value query (SQLite's default parameter limit
    # is 999; two parameters per key).
    _DELETE_CHUNK = 450

    def delete_many(self, keys):
        if not keys:
            return []
        keys = [tuple(key) for key in keys]
        deleted: list[CheckpointRecord] = []
        with self._lock:
            conn = self._connection()
            with conn:  # one transaction: rows vanish together or not at all
                for start in range(0, len(keys), self._DELETE_CHUNK):
                    chunk = keys[start:start + self._DELETE_CHUNK]
                    placeholders = ", ".join(["(?, ?)"] * len(chunk))
                    flat = [value for key in chunk for value in key]
                    rows = conn.execute(
                        f"SELECT {_RECORD_COLUMNS} FROM checkpoints WHERE "
                        f"(block_id, execution_index) IN "
                        f"(VALUES {placeholders})", flat).fetchall()
                    deleted.extend(_row_to_record(row) for row in rows)
                conn.executemany(
                    "DELETE FROM checkpoints WHERE block_id = ? "
                    "AND execution_index = ?", keys)
        return deleted

    def referenced_digests(self):
        # Whole-payload references group in SQL; chunk references come as
        # recipe strings split here (SQLite has no string-split), which is
        # fine — rows with a recipe are a minority and the digests are
        # bounded by payload size / chunk size.
        counts: Counter = Counter()
        for digest, count in self._query(
                "SELECT payload_digest, COUNT(*) FROM checkpoints "
                "WHERE payload_digest != '' GROUP BY payload_digest"):
            counts[digest] += int(count)
        for (recipe,) in self._query(
                "SELECT recipe FROM checkpoints WHERE recipe != ''"):
            counts.update(recipe.split(","))
        return dict(counts)

    def lookup(self, block_id, execution_index):
        rows = self._query(
            f"SELECT {_RECORD_COLUMNS} FROM checkpoints WHERE block_id = ? "
            "AND execution_index = ?", (block_id, execution_index))
        return _row_to_record(rows[0]) if rows else None

    def executions(self, block_id):
        rows = self._query(
            "SELECT execution_index FROM checkpoints WHERE block_id = ? "
            "ORDER BY execution_index", (block_id,))
        return [row[0] for row in rows]

    def latest_execution_at_or_before(self, block_id, execution_index):
        rows = self._query(
            "SELECT MAX(execution_index) FROM checkpoints WHERE block_id = ? "
            "AND execution_index <= ?", (block_id, execution_index))
        return rows[0][0] if rows and rows[0][0] is not None else None

    def blocks(self):
        rows = self._query(
            "SELECT DISTINCT block_id FROM checkpoints ORDER BY block_id")
        return [row[0] for row in rows]

    def records(self):
        rows = self._query(
            f"SELECT {_RECORD_COLUMNS} FROM checkpoints "
            "ORDER BY block_id, execution_index")
        return [_row_to_record(row) for row in rows]

    def checkpoint_count(self):
        return int(self._query("SELECT COUNT(*) FROM checkpoints")[0][0])

    def total_stored_nbytes(self):
        return int(self._query(
            "SELECT COALESCE(SUM(stored_nbytes), 0) FROM checkpoints")[0][0])

    def total_raw_nbytes(self):
        return int(self._query(
            "SELECT COALESCE(SUM(raw_nbytes), 0) FROM checkpoints")[0][0])

    # -- run metadata -----------------------------------------------------
    def set_metadata_json(self, key, value_json):
        with self._lock:
            conn = self._connection()
            with conn:
                conn.execute(
                    "INSERT INTO run_metadata (key, value) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                    (key, value_json))

    def get_metadata_json(self, key):
        rows = self._query(
            "SELECT value FROM run_metadata WHERE key = ?", (key,))
        return rows[0][0] if rows else None

    def update_metadata_json(self, key, update):
        # BEGIN IMMEDIATE takes the write lock *before* the read, so the
        # read-modify-write is one serialized transaction even across
        # processes sharing this manifest (a deferred transaction would
        # read a stale snapshot and fail its lock upgrade under WAL).
        # busy_timeout makes competing updaters wait, not error.
        with self._lock:
            conn = self._connection()
            if conn.in_transaction:
                conn.commit()
            conn.execute("BEGIN IMMEDIATE")
            try:
                rows = conn.execute(
                    "SELECT value FROM run_metadata WHERE key = ?",
                    (key,)).fetchall()
                value_json = update(rows[0][0] if rows else None)
                conn.execute(
                    "INSERT INTO run_metadata (key, value) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                    (key, value_json))
            except BaseException:
                conn.rollback()
                raise
            conn.commit()
            return value_json

    def all_metadata_json(self):
        rows = self._query("SELECT key, value FROM run_metadata")
        return {key: value for key, value in rows}

    def metadata_keys(self, prefix=""):
        # LIKE with an escaped prefix would need ESCAPE gymnastics for keys
        # containing % or _; a range scan on the primary key is simpler and
        # just as index-friendly.
        rows = self._query(
            "SELECT key FROM run_metadata WHERE key >= ? ORDER BY key",
            (prefix,))
        return [row[0] for row in rows if row[0].startswith(prefix)]

    # -- lifecycle --------------------------------------------------------
    def flush(self):
        with self._lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.commit()

    def close(self):
        with self._lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.commit()
                self._conn.close()
            self._conn = None
            self._conn_pid = None


#: Process-wide registry of in-memory backends, keyed by resolved run dir,
#: so reopening a store in the same process attaches to the same data.
_MEMORY_REGISTRY: dict[str, "InMemoryBackend"] = {}
_MEMORY_REGISTRY_LOCK = threading.Lock()


def _registry_key(root_dir: str | Path) -> str:
    return str(Path(root_dir).expanduser().resolve())


class InMemoryBackend(StorageBackend):
    """Everything in process memory — for tests and benchmarks.

    Not shared across processes: fork/IPC materialization and
    multi-process parallel replay write into the child's copy.  Use it
    with in-process strategies (``sequential``, ``thread``, ``spool`` in
    thread mode) and single-worker replay.
    """

    name = "memory"

    def __init__(self, root_dir: str | Path | None = None,
                 object_store: PayloadObjectStore | None = None,
                 dedup: bool = True):
        self.root_dir = Path(root_dir) if root_dir is not None else None
        if object_store is not None:
            self._objects: PayloadObjectStore | None = object_store
        elif dedup:
            # Shared per home (run dir's parent) so in-memory runs under
            # one home dedup against each other; a dirless backend gets a
            # private store.
            self._objects = (MemoryObjectStore.for_dir(self.root_dir.parent)
                             if self.root_dir is not None
                             else MemoryObjectStore())
        else:
            self._objects = None
        self._lock = threading.RLock()
        self._rows: dict[tuple[str, int], CheckpointRecord] = {}
        self._payloads: dict[str, bytes] = {}
        self._metadata: dict[str, str] = {}

    @classmethod
    def for_dir(cls, root_dir: str | Path,
                dedup: bool = True) -> "InMemoryBackend":
        """Attach to (or create) the registered backend for ``root_dir``.

        ``dedup`` only matters on first creation; reattachment keeps the
        layout the run was recorded under (mirroring how on-disk layout
        sniffing wins over a reopening caller's configuration).
        """
        key = _registry_key(root_dir)
        with _MEMORY_REGISTRY_LOCK:
            backend = _MEMORY_REGISTRY.get(key)
            if backend is None:
                backend = _MEMORY_REGISTRY[key] = cls(root_dir, dedup=dedup)
            return backend

    @classmethod
    def discard_dir(cls, root_dir: str | Path) -> None:
        """Drop the registered backend for ``root_dir`` (test hygiene)."""
        with _MEMORY_REGISTRY_LOCK:
            _MEMORY_REGISTRY.pop(_registry_key(root_dir), None)

    # -- payload plane ----------------------------------------------------
    def write_payload(self, block_id, execution_index, payload, *,
                      digest=None):
        if self._objects is not None:
            return self._objects.put(digest or digest_bytes(payload), payload)
        # No "//" in the scheme: locations round-trip through pathlib, which
        # collapses duplicate slashes.
        location = f"mem:{sanitize_block_id(block_id)}/{execution_index}"
        with self._lock:
            self._payloads[location] = bytes(payload)
        return location

    def read_payload(self, location):
        object_digest = MemoryObjectStore.digest_of_location(location)
        if object_digest is not None:
            if self._objects is None:
                raise StorageError(
                    f"content-addressed location {location!r} on a "
                    "dedup-disabled in-memory backend")
            return self._objects.get(object_digest)
        with self._lock:
            try:
                return self._payloads[str(location)]
            except KeyError:
                raise StorageError(
                    f"no in-memory payload at {location!r}") from None

    def discard_payload(self, location):
        if MemoryObjectStore.digest_of_location(location) is not None:
            return 0  # shared blob: only GC may remove it
        with self._lock:
            blob = self._payloads.pop(str(location), None)
        return len(blob) if blob is not None else 0

    def object_store(self):
        return self._objects

    # -- manifest plane ---------------------------------------------------
    def index_many(self, records):
        with self._lock:
            for record in records:
                self._rows[(record.block_id, record.execution_index)] = record

    def delete_many(self, keys):
        deleted: list[CheckpointRecord] = []
        with self._lock:
            for key in keys:
                record = self._rows.pop(tuple(key), None)
                if record is not None:
                    deleted.append(record)
        return deleted

    def referenced_digests(self):
        counts: Counter = Counter()
        with self._lock:
            for record in self._rows.values():
                if record.payload_digest:
                    counts[record.payload_digest] += 1
                counts.update(record.recipe_digests())
        return dict(counts)

    def lookup(self, block_id, execution_index):
        with self._lock:
            return self._rows.get((block_id, execution_index))

    def executions(self, block_id):
        with self._lock:
            return sorted(index for block, index in self._rows
                          if block == block_id)

    def latest_execution_at_or_before(self, block_id, execution_index):
        candidates = [index for index in self.executions(block_id)
                      if index <= execution_index]
        return max(candidates) if candidates else None

    def blocks(self):
        with self._lock:
            return sorted({block for block, _ in self._rows})

    def records(self):
        with self._lock:
            return [self._rows[key] for key in sorted(self._rows)]

    def checkpoint_count(self):
        with self._lock:
            return len(self._rows)

    def total_stored_nbytes(self):
        with self._lock:
            return sum(r.stored_nbytes for r in self._rows.values())

    def total_raw_nbytes(self):
        with self._lock:
            return sum(r.raw_nbytes for r in self._rows.values())

    # -- run metadata -----------------------------------------------------
    def set_metadata_json(self, key, value_json):
        with self._lock:
            self._metadata[key] = value_json

    def get_metadata_json(self, key):
        with self._lock:
            return self._metadata.get(key)

    def update_metadata_json(self, key, update):
        with self._lock:
            value_json = update(self._metadata.get(key))
            self._metadata[key] = value_json
            return value_json

    def all_metadata_json(self):
        with self._lock:
            return dict(self._metadata)

    def metadata_keys(self, prefix=""):
        with self._lock:
            return sorted(key for key in self._metadata
                          if key.startswith(prefix))


class ShardedSQLiteBackend(StorageBackend):
    """Partitions checkpoints across per-shard SQLite manifests.

    Shard assignment is ``int(sha256(block_id)[:8], 16) % num_shards`` —
    stable across processes and Python invocations (``hash()`` is
    randomized for strings).  Each shard is a complete
    :class:`LocalSQLiteBackend` under ``shards/shard-<k>/``, so writers of
    different blocks commit to different SQLite files.  Run metadata lives
    in shard 0.  ``shards.json`` at the root records the shard count;
    a reopening store always honours the recorded count, so replaying a
    sharded run needs no configuration.
    """

    name = "sharded"

    def __init__(self, root_dir: str | Path,
                 num_shards: int = DEFAULT_NUM_SHARDS,
                 object_store: PayloadObjectStore | None = None,
                 dedup: bool = True):
        self.root_dir = Path(root_dir)
        self.num_shards = self._load_or_init_manifest(int(num_shards))
        # One object store for the whole run (and home): shard routing is
        # a manifest-plane concern, dedup is a payload-plane one — an
        # identical payload must collapse to one blob no matter which
        # shard its manifest row lands in.
        if object_store is None and dedup:
            object_store = FileObjectStore.for_dir(
                default_objects_dir(self.root_dir.parent))
        self._objects = object_store
        self.shards = [
            LocalSQLiteBackend(self.root_dir / "shards" / f"shard-{k:02d}",
                               object_store=object_store, dedup=dedup)
            for k in range(self.num_shards)]

    def _load_or_init_manifest(self, requested: int) -> int:
        if requested < 1:
            raise StorageError(f"num_shards must be >= 1, got {requested}")
        manifest_path = self.root_dir / SHARD_MANIFEST_NAME
        if manifest_path.exists():
            try:
                recorded = json.loads(manifest_path.read_text("utf-8"))
                return int(recorded["num_shards"])
            except (ValueError, KeyError, TypeError) as exc:
                raise StorageError(
                    f"corrupt shard manifest at {manifest_path}: {exc}"
                ) from exc
        self.root_dir.mkdir(parents=True, exist_ok=True)
        manifest_path.write_text(json.dumps(
            {"version": 1, "num_shards": requested,
             "partitioner": "sha256(block_id)[:8] % num_shards"}), "utf-8")
        return requested

    def shard_for(self, block_id: str) -> int:
        return int(stable_hash(block_id)[:8], 16) % self.num_shards

    def _shard(self, block_id: str) -> LocalSQLiteBackend:
        return self.shards[self.shard_for(block_id)]

    # -- payload plane ----------------------------------------------------
    def write_payload(self, block_id, execution_index, payload, *,
                      digest=None):
        return self._shard(block_id).write_payload(
            block_id, execution_index, payload, digest=digest)

    def read_payload(self, location):
        return Path(location).read_bytes()

    def discard_payload(self, location):
        for shard in self.shards:
            freed = shard.discard_payload(location)
            if freed:
                return freed
        return 0

    def object_store(self):
        return self._objects

    # -- manifest plane ---------------------------------------------------
    def index_many(self, records):
        by_shard: dict[int, list[CheckpointRecord]] = {}
        for record in records:
            by_shard.setdefault(self.shard_for(record.block_id),
                                []).append(record)
        for shard_index, batch in by_shard.items():
            self.shards[shard_index].index_many(batch)

    def delete_many(self, keys):
        by_shard: dict[int, list[tuple[str, int]]] = {}
        for block_id, execution_index in keys:
            by_shard.setdefault(self.shard_for(block_id),
                                []).append((block_id, execution_index))
        deleted: list[CheckpointRecord] = []
        for shard_index, batch in by_shard.items():
            deleted.extend(self.shards[shard_index].delete_many(batch))
        return deleted

    def referenced_digests(self):
        merged: Counter = Counter()
        for shard in self.shards:
            merged.update(shard.referenced_digests())
        return dict(merged)

    def lookup(self, block_id, execution_index):
        return self._shard(block_id).lookup(block_id, execution_index)

    def contains(self, block_id, execution_index):
        return self._shard(block_id).contains(block_id, execution_index)

    def executions(self, block_id):
        return self._shard(block_id).executions(block_id)

    def latest_execution_at_or_before(self, block_id, execution_index):
        return self._shard(block_id).latest_execution_at_or_before(
            block_id, execution_index)

    def blocks(self):
        merged: set[str] = set()
        for shard in self.shards:
            merged.update(shard.blocks())
        return sorted(merged)

    def records(self):
        merged: list[CheckpointRecord] = []
        for shard in self.shards:
            merged.extend(shard.records())
        merged.sort(key=lambda r: (r.block_id, r.execution_index))
        return merged

    def checkpoint_count(self):
        return sum(shard.checkpoint_count() for shard in self.shards)

    def total_stored_nbytes(self):
        return sum(shard.total_stored_nbytes() for shard in self.shards)

    def total_raw_nbytes(self):
        return sum(shard.total_raw_nbytes() for shard in self.shards)

    # -- run metadata (kept whole in shard 0) ------------------------------
    def set_metadata_json(self, key, value_json):
        self.shards[0].set_metadata_json(key, value_json)

    def get_metadata_json(self, key):
        return self.shards[0].get_metadata_json(key)

    def update_metadata_json(self, key, update):
        return self.shards[0].update_metadata_json(key, update)

    def all_metadata_json(self):
        return self.shards[0].all_metadata_json()

    def metadata_keys(self, prefix=""):
        return self.shards[0].metadata_keys(prefix)

    # -- lifecycle --------------------------------------------------------
    def flush(self):
        for shard in self.shards:
            shard.flush()

    def close(self):
        for shard in self.shards:
            shard.close()


def registered_memory_backends(home: str | Path) -> list[InMemoryBackend]:
    """Registered in-memory backends whose run dir sits under ``home``.

    The lifecycle GC's view of in-memory runs: their manifests exist only
    in this registry, so the mark phase must include them alongside the
    on-disk run dirs it scans.
    """
    home_key = str(Path(home).expanduser().resolve())
    with _MEMORY_REGISTRY_LOCK:
        items = list(_MEMORY_REGISTRY.items())
    return [backend for key, backend in items
            if str(Path(key).parent) == home_key]


def resolve_backend(run_dir: str | Path,
                    backend: "StorageBackend | str | None" = None,
                    *, num_shards: int | None = None,
                    dedup: bool = True) -> StorageBackend:
    """Resolve a backend for ``run_dir``.

    An explicit :class:`StorageBackend` instance wins.  Otherwise an
    existing on-disk layout is sniffed first — a ``shards.json`` reopens
    the run as sharded (with its recorded shard count) and an in-memory
    registration reattaches it in-process — so replaying a run never
    requires the caller to know how it was recorded.  Absent both, the
    named backend (default ``"local"``) is created.  ``dedup`` routes new
    payload writes through the home-shared content-addressed object store
    (reads always follow the manifest's recorded locations, so either
    setting reads either layout).
    """
    if isinstance(backend, StorageBackend):
        return backend
    run_dir = Path(run_dir)
    shards = num_shards or DEFAULT_NUM_SHARDS
    if (run_dir / SHARD_MANIFEST_NAME).exists():
        return ShardedSQLiteBackend(run_dir, num_shards=shards, dedup=dedup)
    if (run_dir / "manifest.sqlite").exists():
        # An existing local run wins over any requested name: replaying a
        # recorded run must work regardless of the caller's configuration.
        return LocalSQLiteBackend(run_dir, dedup=dedup)
    registered = _MEMORY_REGISTRY.get(_registry_key(run_dir))
    if registered is not None and backend in (None, "local", "memory"):
        return registered
    if backend == "memory":
        return InMemoryBackend.for_dir(run_dir, dedup=dedup)
    if backend == "sharded":
        return ShardedSQLiteBackend(run_dir, num_shards=shards, dedup=dedup)
    if backend in (None, "local"):
        return LocalSQLiteBackend(run_dir, dedup=dedup)
    raise StorageError(
        f"unknown storage backend {backend!r}; known backends: "
        f"{', '.join(BACKEND_NAMES)}")
