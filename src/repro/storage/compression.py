"""Pluggable compression codecs for checkpoint payloads.

Table 4 reports gzip-compressed checkpoint sizes; the store compresses
payloads with the same codec family before they hit disk (and before the
simulated S3 spool), so measured sizes here play the same role as in the
paper.  Beyond gzip, the registry carries a no-op ``raw`` codec and the
stdlib ``zlib``/``lzma`` alternatives, so the adaptive controller can trade
compression ratio against throughput per payload.

Every compressed payload is *framed*: a 4-byte magic plus a one-byte codec
id precede the codec's output, so :func:`decompress` dispatches by id
instead of sniffing codec magics.  Pre-frame payloads (bare gzip from
earlier runs) are still recognized by the gzip magic, and anything else
passes through untouched — the store's legacy uncompressed path.
"""

from __future__ import annotations

import gzip
import lzma
import zlib
from dataclasses import dataclass

from ..exceptions import StorageError

__all__ = ["CompressionResult", "Codec", "CODEC_NAMES", "FRAME_MAGIC",
           "get_codec", "codec_of", "compress", "decompress",
           "compression_ratio"]

#: Frame prefix of a codec-framed payload: magic + one codec-id byte.
FRAME_MAGIC = b"FLC1"


@dataclass(frozen=True)
class Codec:
    """One registered compression codec.

    ``codec_id`` is the frame byte — part of the on-disk format, never
    reused.  ``default_level`` feeds ``encode`` when the caller passes no
    level; levels are clamped into the codec's valid range so one knob
    (``FlorConfig.codec_level``) serves every codec.
    """

    name: str
    codec_id: int
    default_level: int

    def encode(self, data: bytes, level: int | None = None) -> bytes:
        level = self.default_level if level is None else max(0, min(9, level))
        if self.name == "raw":
            return bytes(data)
        if self.name == "gzip":
            # ``mtime=0`` pins the gzip header timestamp: without it the
            # compressed bytes of identical payloads differ run to run,
            # which would defeat content-addressed dedup and make payload
            # digests unstable across processes.
            return gzip.compress(data, compresslevel=max(level, 1), mtime=0)
        if self.name == "zlib":
            return zlib.compress(data, level=level)
        if self.name == "lzma":
            return lzma.compress(data, preset=level)
        raise StorageError(f"codec {self.name!r} has no encoder")

    def decode(self, data: bytes) -> bytes:
        if self.name == "raw":
            return bytes(data)
        if self.name == "gzip":
            return gzip.decompress(data)
        if self.name == "zlib":
            return zlib.decompress(data)
        if self.name == "lzma":
            return lzma.decompress(data)
        raise StorageError(f"codec {self.name!r} has no decoder")


#: The codec registry.  Ids are on-disk format; append, never renumber.
_CODECS = (
    Codec(name="raw", codec_id=0, default_level=0),
    Codec(name="gzip", codec_id=1, default_level=6),
    Codec(name="zlib", codec_id=2, default_level=6),
    # lzma presets above 1 are far too slow for a record hot path; the
    # registry default keeps it usable when the cost model picks it.
    Codec(name="lzma", codec_id=3, default_level=1),
)
_BY_NAME = {codec.name: codec for codec in _CODECS}
_BY_ID = {codec.codec_id: codec for codec in _CODECS}

#: Codec names accepted by the configuration layer.
CODEC_NAMES = tuple(codec.name for codec in _CODECS)


def get_codec(name: str) -> Codec:
    """Look up a codec by registry name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise StorageError(f"unknown codec {name!r}; known codecs: "
                           f"{', '.join(CODEC_NAMES)}") from None


def codec_of(data: bytes) -> str | None:
    """The codec name a stored payload was framed with.

    ``"gzip"`` for bare pre-frame gzip payloads; ``None`` when the bytes
    are not a recognized compressed format (legacy uncompressed payloads).
    """
    if data[:4] == FRAME_MAGIC and len(data) >= 5:
        codec = _BY_ID.get(data[4])
        return codec.name if codec is not None else None
    if data[:2] == b"\x1f\x8b":
        return "gzip"
    return None


@dataclass
class CompressionResult:
    """Outcome of compressing one payload."""

    data: bytes
    raw_nbytes: int
    compressed_nbytes: int
    codec: str = "gzip"

    @property
    def ratio(self) -> float:
        """Compression ratio (raw / compressed); 1.0 for empty payloads."""
        if self.compressed_nbytes == 0:
            return 1.0
        return self.raw_nbytes / self.compressed_nbytes


def compress(data: bytes, level: int | None = None,
             codec: str = "gzip") -> CompressionResult:
    """Compress ``data`` with ``codec`` into a framed payload.

    The result's ``data`` is ``FRAME_MAGIC + codec_id + <codec output>``;
    ``compressed_nbytes`` counts the whole frame, since that is what hits
    disk.  ``raw`` frames without compressing — 5 bytes of overhead buying
    an unambiguous decode for payloads whose first bytes could collide
    with a codec magic.
    """
    entry = get_codec(codec)
    framed = b"".join((FRAME_MAGIC, bytes((entry.codec_id,)),
                       entry.encode(data, level)))
    return CompressionResult(data=framed, raw_nbytes=len(data),
                             compressed_nbytes=len(framed), codec=entry.name)


def decompress(data: bytes) -> bytes:
    """Inverse of :func:`compress`.

    Dispatches on the frame's codec id; falls back to the gzip magic for
    payloads from pre-frame runs, and passes anything else through
    (the legacy uncompressed path).
    """
    if data[:4] == FRAME_MAGIC and len(data) >= 5:
        codec = _BY_ID.get(data[4])
        if codec is None:
            raise StorageError(
                f"framed payload with unknown codec id {data[4]}")
        try:
            return codec.decode(bytes(data[5:]))
        except Exception as exc:
            raise StorageError(
                f"cannot decompress {codec.name} payload: {exc}") from exc
    if data[:2] == b"\x1f\x8b":
        return gzip.decompress(data)
    return data


def compression_ratio(data: bytes, level: int | None = None,
                      codec: str = "gzip") -> float:
    """Convenience: compression ratio achieved on ``data``."""
    return compress(data, level=level, codec=codec).ratio
