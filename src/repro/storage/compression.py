"""Gzip compression for checkpoint payloads.

Table 4 reports gzip-compressed checkpoint sizes; the store compresses
payloads with the same codec before they hit disk (and before the simulated
S3 spool), so measured sizes here play the same role as in the paper.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass

__all__ = ["CompressionResult", "compress", "decompress", "compression_ratio"]


@dataclass
class CompressionResult:
    """Outcome of compressing one payload."""

    data: bytes
    raw_nbytes: int
    compressed_nbytes: int

    @property
    def ratio(self) -> float:
        """Compression ratio (raw / compressed); 1.0 for empty payloads."""
        if self.compressed_nbytes == 0:
            return 1.0
        return self.raw_nbytes / self.compressed_nbytes


def compress(data: bytes, level: int = 6) -> CompressionResult:
    """Gzip-compress ``data`` and report both sizes.

    ``mtime=0`` pins the gzip header timestamp: without it the compressed
    bytes of identical payloads differ run to run, which would defeat
    content-addressed dedup and make payload digests unstable across
    processes.
    """
    compressed = gzip.compress(data, compresslevel=level, mtime=0)
    return CompressionResult(data=compressed, raw_nbytes=len(data),
                             compressed_nbytes=len(compressed))


def decompress(data: bytes) -> bytes:
    """Inverse of :func:`compress`.  Pass-through for uncompressed payloads."""
    if data[:2] == b"\x1f\x8b":
        return gzip.decompress(data)
    return data


def compression_ratio(data: bytes, level: int = 6) -> float:
    """Convenience: compression ratio achieved on ``data``."""
    return compress(data, level=level).ratio
