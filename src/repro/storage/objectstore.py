"""Content-addressed payload object stores.

Dedup moves checkpoint payloads out of per-execution files and into a
content-addressed object store shared by every run under one Flor home:
a payload is stored once per SHA-256 digest, no matter how many manifest
rows — across blocks, executions and *runs* — reference it.  Identical
checkpoints (a model that stopped improving, a re-recorded workload, a
sweep over non-model hyperparameters) therefore cost one blob.

Two implementations mirror the backend split:

:class:`FileObjectStore`
    Blobs at ``<objects_dir>/<digest[:2]>/<digest>``, written atomically
    (temp file + ``os.replace``) so a crash mid-write never leaves a
    partial blob under a valid digest name.  Blob files are immutable
    once placed; ``digest -> size/age`` is answered straight from the
    filesystem, so there is no index to keep transactionally consistent
    with the manifests that reference the blobs.  Local and sharded
    backends under the same home share one store at ``<home>/objects``.
:class:`MemoryObjectStore`
    A process-local dict, registered per home directory so in-memory
    runs under one home dedup against each other (mirroring
    ``InMemoryBackend``'s per-run-dir registry).

Reference counts are *derived*, not stored: each backend can report
``payload_digest -> row count`` from its manifest
(:meth:`~repro.storage.backends.StorageBackend.referenced_digests`), and
the lifecycle layer's GC unions those counts across runs before sweeping.
Deriving refcounts from the manifest makes them transactionally
consistent with it by construction — there is no second table to get out
of sync when a crash lands between a payload write and a manifest commit.

Crash-safety contract (shared with :mod:`repro.storage.lifecycle`):
blobs are written *before* the manifest rows that reference them, and
deleted only *after* no manifest row references them (payload-last,
manifest-first).  An interrupted writer can only leave an orphaned blob,
never a dangling manifest row; an interrupted GC can only leave an
orphan for the next sweep, never delete a referenced blob.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import StorageError
from ..telemetry import get_metrics

__all__ = ["OBJECTS_DIR_NAME", "ObjectStoreStats", "PayloadObjectStore",
           "FileObjectStore", "MemoryObjectStore", "default_objects_dir"]

#: Directory under a Flor home holding the shared content-addressed blobs.
OBJECTS_DIR_NAME = "objects"

#: Suffix of in-flight temp files (swept by GC if a crash strands them).
_TMP_SUFFIX = ".tmp"


def default_objects_dir(home: str | Path) -> Path:
    """The shared object directory for every run under ``home``."""
    return Path(home) / OBJECTS_DIR_NAME


@dataclass
class ObjectStoreStats:
    """One object store's physical footprint plus process-local counters."""

    objects: int
    total_nbytes: int
    #: ``put`` calls served by an existing blob (process-local lifetime).
    dedup_hits: int
    #: ``put`` calls that wrote a new blob (process-local lifetime).
    puts: int


class PayloadObjectStore:
    """Interface of a content-addressed payload store."""

    kind = "abstract"

    def put(self, digest: str, payload: bytes) -> str:
        """Store ``payload`` under ``digest`` (idempotent); return location."""
        raise NotImplementedError

    def get(self, digest: str) -> bytes:
        raise NotImplementedError

    def contains(self, digest: str) -> bool:
        raise NotImplementedError

    def touch(self, digest: str) -> int | None:
        """Age-refresh an existing blob; return its stored size, else None.

        The chunked write path's dedup probe: when a chunk's digest is
        already stored, ``touch`` re-enters it into the GC grace window
        (exactly like a dedup ``put``) *without* the caller compressing
        the chunk bytes first — the whole point of writing only new
        chunks.  ``None`` means absent: compress and ``put``.
        """
        raise NotImplementedError

    def location(self, digest: str) -> str:
        """The opaque location string manifest rows record for ``digest``."""
        raise NotImplementedError

    def digests(self) -> dict[str, int]:
        """``digest -> stored nbytes`` for every blob currently held."""
        raise NotImplementedError

    def age_seconds(self, digest: str, now: float | None = None) -> float:
        """Seconds since the blob was placed (GC grace-period input)."""
        raise NotImplementedError

    def delete(self, digests: "list[str] | set[str]", *,
               not_newer_than: float | None = None) -> tuple[int, int]:
        """Remove blobs; returns ``(objects_deleted, nbytes_freed)``.

        ``not_newer_than`` skips blobs placed (or age-refreshed) after
        the given timestamp: a GC sweep passes its mark time, so a blob a
        concurrent writer re-referenced *after* the mark survives even
        though the mark saw it as unreferenced.
        """
        raise NotImplementedError

    def stats(self) -> ObjectStoreStats:
        raise NotImplementedError


#: Process-wide cache of file object stores, keyed by resolved objects dir,
#: so every opener of one home (backends, GC, stats) shares one instance —
#: and its process-local dedup counters.
_FILE_OBJECT_CACHE: dict[str, "FileObjectStore"] = {}
_FILE_OBJECT_CACHE_LOCK = threading.Lock()


class FileObjectStore(PayloadObjectStore):
    """Filesystem blobs, fanned out by digest prefix, written atomically."""

    kind = "file"

    def __init__(self, objects_dir: str | Path):
        self.objects_dir = Path(objects_dir)
        self._counter_lock = threading.Lock()
        self._dedup_hits = 0
        self._puts = 0

    @classmethod
    def for_dir(cls, objects_dir: str | Path) -> "FileObjectStore":
        """The process-wide store instance for ``objects_dir``."""
        key = str(Path(objects_dir).expanduser().resolve())
        with _FILE_OBJECT_CACHE_LOCK:
            store = _FILE_OBJECT_CACHE.get(key)
            if store is None:
                store = _FILE_OBJECT_CACHE[key] = cls(objects_dir)
            return store

    # -- addressing -------------------------------------------------------
    def blob_path(self, digest: str) -> Path:
        if len(digest) < 3:
            raise StorageError(f"implausible payload digest {digest!r}")
        return self.objects_dir / digest[:2] / digest

    def location(self, digest: str) -> str:
        return str(self.blob_path(digest))

    # -- write / read -----------------------------------------------------
    def put(self, digest: str, payload: bytes) -> str:
        path = self.blob_path(digest)
        if path.exists():
            # Refresh the blob's age: an old unreferenced blob that is
            # being *re*-referenced must re-enter the GC grace window, or
            # a concurrent sweep (mark taken before our manifest commit)
            # could delete it out from under the new row.
            try:
                os.utime(path)
            except FileNotFoundError:  # pragma: no cover - sweep race
                pass
            else:
                with self._counter_lock:
                    self._dedup_hits += 1
                    get_metrics().inc("storage.dedup_hits")
                return str(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name per writer, then an atomic rename: concurrent
        # writers of the same digest race benignly (same bytes), and a
        # crash mid-write strands only a ``.tmp`` file GC later sweeps.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{threading.get_ident()}{_TMP_SUFFIX}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        with self._counter_lock:
            self._puts += 1
        return str(path)

    def get(self, digest: str) -> bytes:
        try:
            return self.blob_path(digest).read_bytes()
        except FileNotFoundError:
            raise StorageError(f"no payload object {digest!r} under "
                               f"{self.objects_dir}") from None

    def contains(self, digest: str) -> bool:
        return self.blob_path(digest).exists()

    def touch(self, digest: str) -> int | None:
        path = self.blob_path(digest)
        try:
            # Same age refresh as a dedup put: the re-referenced blob must
            # re-enter the GC grace window before the new manifest row
            # referencing it commits.
            os.utime(path)
            nbytes = path.stat().st_size
        except FileNotFoundError:
            return None
        with self._counter_lock:
            self._dedup_hits += 1
            get_metrics().inc("storage.dedup_hits")
        return nbytes

    # -- enumeration ------------------------------------------------------
    def _blob_files(self):
        if not self.objects_dir.is_dir():
            return
        for bucket in sorted(self.objects_dir.iterdir()):
            if not bucket.is_dir():
                continue
            for path in sorted(bucket.iterdir()):
                if path.is_file() and not path.name.endswith(_TMP_SUFFIX):
                    yield path

    def digests(self) -> dict[str, int]:
        held: dict[str, int] = {}
        for path in self._blob_files():
            try:
                held[path.name] = path.stat().st_size
            except FileNotFoundError:
                # A concurrent sweep (another process closing under the
                # same home) unlinked it between listing and stat.
                continue
        return held

    def age_seconds(self, digest: str, now: float | None = None) -> float:
        now = time.time() if now is None else now
        try:
            return max(0.0, now - self.blob_path(digest).stat().st_mtime)
        except FileNotFoundError:
            return 0.0

    # -- deletion (GC only) ----------------------------------------------
    def _delete_blob(self, path: Path) -> int:
        """Unlink one blob file; the fault-injection hook point."""
        nbytes = path.stat().st_size
        path.unlink()
        return nbytes

    def delete(self, digests, *, not_newer_than=None) -> tuple[int, int]:
        deleted, freed = 0, 0
        for digest in sorted(digests):
            path = self.blob_path(digest)
            try:
                if not_newer_than is not None and \
                        path.stat().st_mtime > not_newer_than:
                    # Re-referenced (age-refreshed by a dedup put) after
                    # the caller's mark phase: its new manifest row may
                    # already be committed — keep it.
                    continue
                freed += self._delete_blob(path)
                deleted += 1
            except FileNotFoundError:
                continue
        return deleted, freed

    def sweep_stranded_tmp(self, grace_seconds: float = 0.0) -> int:
        """Remove temp files stranded by a crashed writer."""
        removed = 0
        now = time.time()
        if not self.objects_dir.is_dir():
            return 0
        for bucket in self.objects_dir.iterdir():
            if not bucket.is_dir():
                continue
            for path in bucket.glob(f"*{_TMP_SUFFIX}"):
                try:
                    if now - path.stat().st_mtime >= grace_seconds:
                        path.unlink()
                        removed += 1
                except FileNotFoundError:
                    continue
        return removed

    def stats(self) -> ObjectStoreStats:
        held = self.digests()
        with self._counter_lock:
            return ObjectStoreStats(objects=len(held),
                                    total_nbytes=sum(held.values()),
                                    dedup_hits=self._dedup_hits,
                                    puts=self._puts)


#: Process-wide registry of in-memory object stores, keyed by resolved home
#: directory, so every in-memory run under one home shares one blob space.
_MEMORY_OBJECT_REGISTRY: dict[str, "MemoryObjectStore"] = {}
_MEMORY_OBJECT_REGISTRY_LOCK = threading.Lock()


class MemoryObjectStore(PayloadObjectStore):
    """Process-local content-addressed store for in-memory backends."""

    kind = "memory"

    #: Location prefix; kept under ``mem:`` so in-memory locations stay
    #: recognizably non-filesystem (and pathlib-safe, like the legacy
    #: ``mem:<block>/<index>`` scheme).
    LOCATION_PREFIX = "mem:obj/"

    def __init__(self, home: str | Path | None = None):
        self.home = Path(home) if home is not None else None
        self._lock = threading.Lock()
        self._blobs: dict[str, bytes] = {}
        self._placed_at: dict[str, float] = {}
        self._dedup_hits = 0
        self._puts = 0

    @classmethod
    def for_dir(cls, home: str | Path) -> "MemoryObjectStore":
        """Attach to (or create) the registered store for ``home``."""
        key = str(Path(home).expanduser().resolve())
        with _MEMORY_OBJECT_REGISTRY_LOCK:
            store = _MEMORY_OBJECT_REGISTRY.get(key)
            if store is None:
                store = _MEMORY_OBJECT_REGISTRY[key] = cls(home)
            return store

    @classmethod
    def registered_for(cls, home: str | Path) -> "MemoryObjectStore | None":
        key = str(Path(home).expanduser().resolve())
        with _MEMORY_OBJECT_REGISTRY_LOCK:
            return _MEMORY_OBJECT_REGISTRY.get(key)

    @classmethod
    def discard_dir(cls, home: str | Path) -> None:
        """Drop the registered store for ``home`` (test hygiene)."""
        key = str(Path(home).expanduser().resolve())
        with _MEMORY_OBJECT_REGISTRY_LOCK:
            _MEMORY_OBJECT_REGISTRY.pop(key, None)

    # -- addressing -------------------------------------------------------
    def location(self, digest: str) -> str:
        return f"{self.LOCATION_PREFIX}{digest}"

    @classmethod
    def digest_of_location(cls, location: str) -> str | None:
        """The digest a ``mem:obj/`` location addresses, else None."""
        text = str(location)
        if text.startswith(cls.LOCATION_PREFIX):
            return text[len(cls.LOCATION_PREFIX):]
        return None

    # -- write / read -----------------------------------------------------
    def put(self, digest: str, payload: bytes) -> str:
        with self._lock:
            if digest in self._blobs:
                self._dedup_hits += 1
                get_metrics().inc("storage.dedup_hits")
                # Re-referencing resets the GC grace window (see the
                # file store's put for why).
                self._placed_at[digest] = time.time()
            else:
                self._blobs[digest] = bytes(payload)
                self._placed_at[digest] = time.time()
                self._puts += 1
        return self.location(digest)

    def get(self, digest: str) -> bytes:
        with self._lock:
            try:
                return self._blobs[digest]
            except KeyError:
                raise StorageError(
                    f"no in-memory payload object {digest!r}") from None

    def contains(self, digest: str) -> bool:
        with self._lock:
            return digest in self._blobs

    def touch(self, digest: str) -> int | None:
        with self._lock:
            blob = self._blobs.get(digest)
            if blob is None:
                return None
            self._placed_at[digest] = time.time()
            self._dedup_hits += 1
            get_metrics().inc("storage.dedup_hits")
            return len(blob)

    # -- enumeration ------------------------------------------------------
    def digests(self) -> dict[str, int]:
        with self._lock:
            return {digest: len(blob)
                    for digest, blob in self._blobs.items()}

    def age_seconds(self, digest: str, now: float | None = None) -> float:
        now = time.time() if now is None else now
        with self._lock:
            placed = self._placed_at.get(digest)
        return max(0.0, now - placed) if placed is not None else 0.0

    # -- deletion (GC only) ----------------------------------------------
    def delete(self, digests, *, not_newer_than=None) -> tuple[int, int]:
        deleted, freed = 0, 0
        with self._lock:
            for digest in sorted(digests):
                if not_newer_than is not None and \
                        self._placed_at.get(digest, 0.0) > not_newer_than:
                    continue  # re-referenced after the caller's mark
                blob = self._blobs.pop(digest, None)
                self._placed_at.pop(digest, None)
                if blob is not None:
                    deleted += 1
                    freed += len(blob)
        return deleted, freed

    def stats(self) -> ObjectStoreStats:
        with self._lock:
            return ObjectStoreStats(objects=len(self._blobs),
                                    total_nbytes=sum(
                                        len(b) for b in self._blobs.values()),
                                    dedup_hits=self._dedup_hits,
                                    puts=self._puts)
