"""Cluster model for the paper's evaluation testbed (Section 6).

The paper replays on a pool of up to four EC2 P3.8xLarge machines, four
V100 GPUs each; every replay worker owns one GPU.  This module models that
pool: how many workers a configuration provides, and how a fixed number of
main-loop partitions balances across them (the limit behind Figure 13's
"200 epochs over 16 workers -> at most 13 epochs per worker").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import SimulationError
from ..storage.costs import INSTANCE_PRICES, InstanceType

__all__ = ["Machine", "Cluster", "ideal_speedup", "achievable_speedup"]


@dataclass(frozen=True)
class Machine:
    """One EC2 instance in the replay pool."""

    instance: InstanceType

    @property
    def gpus(self) -> int:
        return self.instance.gpus

    @property
    def hourly_usd(self) -> float:
        return self.instance.hourly_usd


@dataclass(frozen=True)
class Cluster:
    """A homogeneous pool of machines used for parallel replay."""

    machines: int = 1
    instance_name: str = "p3.8xlarge"

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise SimulationError(
                f"cluster needs at least one machine, got {self.machines}")
        if self.instance_name not in INSTANCE_PRICES:
            raise SimulationError(
                f"unknown instance type {self.instance_name!r}")

    @property
    def instance(self) -> InstanceType:
        return INSTANCE_PRICES[self.instance_name]

    @property
    def total_gpus(self) -> int:
        return self.machines * self.instance.gpus

    @property
    def hourly_usd(self) -> float:
        return self.machines * self.instance.hourly_usd

    def workers(self, max_useful: int | None = None) -> int:
        """Number of replay workers, optionally capped by available partitions."""
        if max_useful is None:
            return self.total_gpus
        return max(min(self.total_gpus, max_useful), 1)


def ideal_speedup(partitions: int, workers: int) -> float:
    """Speedup if the partitions divided perfectly evenly across workers."""
    if partitions <= 0:
        raise SimulationError(f"partitions must be positive, got {partitions}")
    return float(min(workers, partitions))


def achievable_speedup(partitions: int, workers: int) -> float:
    """Speedup limited by load balancing of whole partitions.

    With ``partitions`` indivisible units over ``workers`` workers, the
    slowest worker executes ``ceil(partitions / workers)`` of them, so the
    speedup is ``partitions / ceil(partitions / workers)`` — e.g. 200 epochs
    on 16 GPUs gives 200/13 = 15.38x (Figure 13).
    """
    if partitions <= 0:
        raise SimulationError(f"partitions must be positive, got {partitions}")
    if workers <= 0:
        raise SimulationError(f"workers must be positive, got {workers}")
    per_worker = math.ceil(partitions / workers)
    return partitions / per_worker
