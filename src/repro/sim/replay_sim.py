"""Paper-scale simulation of the replay phase (Figures 10, 12 and 13).

Replay latency is governed by three quantities:

* how many main-loop iterations must be *re-executed* (probed blocks, plus
  epochs whose checkpoint was never materialized),
* how many can instead be *restored* from a Loop End Checkpoint (restoring
  costs roughly ``c`` times the materialization time plus the time to read
  the checkpoint bytes back from storage),
* and how much hindsight parallelism is available (one worker per GPU,
  bounded by the number of independently restartable partitions).

The functions below combine those ingredients into the three replay
experiments of the paper's evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import PAPER_MEASURED_SCALING_FACTOR
from ..exceptions import SimulationError
from ..modes import InitStrategy
from ..workloads.registry import WorkloadSpec
from .cluster import achievable_speedup
from .record_sim import RecordSimulation, simulate_record

__all__ = ["RESTORE_THROUGHPUT_BYTES_PER_SECOND", "PER_EPOCH_REPLAY_OVERHEAD_SECONDS",
           "ReplaySimulation", "restore_seconds_per_epoch",
           "simulate_outer_probe_replay", "simulate_inner_probe_replay",
           "simulate_parallel_replay_fraction", "simulate_scaleout"]

#: Sequential read throughput of the checkpoint volume (the paper's EBS
#: volumes sustain ~7 Gbps, i.e. ~875 MB/s).
RESTORE_THROUGHPUT_BYTES_PER_SECOND = 875e6

#: Fixed per-epoch replay cost outside the nested training loop: advancing
#: the main loop, deserializing small objects, logging (seconds).
PER_EPOCH_REPLAY_OVERHEAD_SECONDS = 0.1

#: Fixed per-replay startup cost: imports, loading and preprocessing the
#: training data, constructing the model — everything before the main loop
#: (the first half of worker initialization in Section 5.4.2).
REPLAY_STARTUP_SECONDS = 60.0


@dataclass
class ReplaySimulation:
    """Outcome of simulating one replay configuration."""

    workload: str
    probe: str                   # "outer" or "inner"
    num_workers: int
    init_strategy: InitStrategy
    vanilla_seconds: float
    replay_seconds: float
    epochs_restored: int
    epochs_recomputed: int

    @property
    def speedup(self) -> float:
        if self.replay_seconds <= 0:
            return float("inf")
        return self.vanilla_seconds / self.replay_seconds

    @property
    def fraction_of_vanilla(self) -> float:
        if self.vanilla_seconds <= 0:
            return 0.0
        return self.replay_seconds / self.vanilla_seconds


def restore_seconds_per_epoch(spec: WorkloadSpec,
                              scaling_factor: float = PAPER_MEASURED_SCALING_FACTOR
                              ) -> float:
    """Time to restore one epoch's Loop End Checkpoint from storage."""
    read_seconds = (spec.checkpoint_nbytes_per_epoch
                    / RESTORE_THROUGHPUT_BYTES_PER_SECOND)
    return scaling_factor * read_seconds + PER_EPOCH_REPLAY_OVERHEAD_SECONDS


def _record_or_default(spec: WorkloadSpec,
                       record: RecordSimulation | None) -> RecordSimulation:
    return record if record is not None else simulate_record(spec)


def simulate_outer_probe_replay(spec: WorkloadSpec,
                                record: RecordSimulation | None = None,
                                num_gpus: int = 4) -> ReplaySimulation:
    """Figure 12 (top): the developer probes only the outer main loop.

    Memoized epochs are skipped (their side-effects restored from disk);
    epochs without a materialized checkpoint — the sparse fine-tuning
    workloads — must be re-executed, and that re-execution parallelizes
    across the available GPUs.
    """
    if num_gpus < 1:
        raise SimulationError(f"num_gpus must be >= 1, got {num_gpus}")
    record = _record_or_default(spec, record)

    restored = record.checkpoints_materialized
    recomputed = spec.epochs - restored
    restore_total = restored * restore_seconds_per_epoch(spec)
    recompute_total = recomputed * spec.epoch_seconds
    # Re-execution of non-memoized epochs is what parallelism can help with;
    # restores are I/O-bound and modelled as sequential on one reader.
    parallel_recompute = recompute_total / min(num_gpus, max(recomputed, 1))
    replay_seconds = (REPLAY_STARTUP_SECONDS + restore_total
                      + parallel_recompute
                      + spec.epochs * PER_EPOCH_REPLAY_OVERHEAD_SECONDS)

    return ReplaySimulation(
        workload=spec.name, probe="outer", num_workers=num_gpus,
        init_strategy=InitStrategy.STRONG,
        vanilla_seconds=spec.vanilla_seconds,
        replay_seconds=replay_seconds,
        epochs_restored=restored, epochs_recomputed=recomputed)


def partitions_available(spec: WorkloadSpec,
                         record: RecordSimulation | None = None) -> int:
    """Number of independently restartable main-loop partitions.

    Densely checkpointed workloads can restart replay at any epoch, so every
    epoch is a partition.  Sparsely checkpointed workloads can only restart
    at materialized checkpoints (Figure 10's note that RTE & CoLA have just
    six epoch-partitions each).
    """
    record = _record_or_default(spec, record)
    if record.checkpoints_materialized >= spec.epochs:
        return spec.epochs
    return max(record.checkpoints_materialized, 1)


def simulate_inner_probe_replay(spec: WorkloadSpec,
                                record: RecordSimulation | None = None,
                                num_gpus: int = 4,
                                init_strategy: InitStrategy = InitStrategy.STRONG
                                ) -> ReplaySimulation:
    """Figure 12 (bottom): the developer probes the inner training loop.

    Every epoch must be re-executed; the only lever is hindsight
    parallelism.  Worker initialization is restore-based and adds a small
    per-worker cost (strong initialization restores every preceding epoch,
    weak initialization restores one checkpoint).
    """
    if num_gpus < 1:
        raise SimulationError(f"num_gpus must be >= 1, got {num_gpus}")
    record = _record_or_default(spec, record)

    partitions = partitions_available(spec, record)
    workers = min(num_gpus, partitions)
    speedup = achievable_speedup(spec.epochs, workers)
    parallel_compute = spec.vanilla_seconds / speedup

    restore_each = restore_seconds_per_epoch(spec)
    if init_strategy is InitStrategy.STRONG:
        # The last worker initializes every epoch before its segment.
        init_epochs = spec.epochs - math.ceil(spec.epochs / workers)
        init_seconds = init_epochs * restore_each
    else:
        init_seconds = restore_each

    replay_seconds = REPLAY_STARTUP_SECONDS + parallel_compute + init_seconds
    return ReplaySimulation(
        workload=spec.name, probe="inner", num_workers=workers,
        init_strategy=init_strategy,
        vanilla_seconds=spec.vanilla_seconds,
        replay_seconds=replay_seconds,
        epochs_restored=0, epochs_recomputed=spec.epochs)


def simulate_parallel_replay_fraction(spec: WorkloadSpec,
                                      record: RecordSimulation | None = None,
                                      num_gpus: int = 4,
                                      init_strategy: InitStrategy = InitStrategy.STRONG
                                      ) -> float:
    """Figure 10: parallel replay time as a fraction of a vanilla re-execution.

    A vanilla re-execution performs the same work without Flor, so the
    fraction is bounded below by ``1 / num_gpus`` (the gray ideal line), and
    by the partition-count limit for sparsely checkpointed workloads.
    """
    record = _record_or_default(spec, record)
    partitions = partitions_available(spec, record)
    workers = min(num_gpus, partitions)
    slowest_share = math.ceil(partitions / workers) / partitions
    simulation = simulate_inner_probe_replay(spec, record, num_gpus=num_gpus,
                                             init_strategy=init_strategy)
    # The compute fraction is set by load balance over partitions; worker
    # initialization adds a small amount on top (negligible for strong vs
    # weak at paper scale, as Figure 10 observes).
    init_fraction = (simulation.replay_seconds
                     - spec.vanilla_seconds * slowest_share) / spec.vanilla_seconds
    return slowest_share + max(init_fraction, 0.0)


def simulate_scaleout(spec: WorkloadSpec, machines: list[int] | None = None,
                      gpus_per_machine: int = 4,
                      record: RecordSimulation | None = None) -> dict[int, float]:
    """Figure 13: replay speedup as 4-GPU machines are added (RsNt has 200
    epochs to parallelize; the load-balance ceiling on 16 GPUs is 15.38x)."""
    machines = machines or [1, 2, 3, 4]
    record = _record_or_default(spec, record)
    partitions = partitions_available(spec, record)
    speedups: dict[int, float] = {}
    for machine_count in machines:
        workers = min(machine_count * gpus_per_machine, partitions)
        simulation = simulate_inner_probe_replay(
            spec, record, num_gpus=workers, init_strategy=InitStrategy.WEAK)
        speedups[machine_count] = simulation.speedup
    return speedups
