"""Paper-scale evaluation simulator.

Live miniature workloads validate Flor's mechanisms end-to-end; this package
reproduces the *paper-scale* evaluation — hours-long GPU training runs on a
4-machine EC2 pool — with a calibrated cost model so every table and figure
of Section 6 can be regenerated in milliseconds.
"""

from .cluster import Cluster, Machine, achievable_speedup, ideal_speedup
from .cost_model import (ReplayCostComparison, checkpoint_storage_cost,
                         compare_replay_costs)
from .record_sim import (BACKGROUND_OVERHEAD_FACTOR, RecordSimulation,
                         simulate_record)
from .replay_sim import (ReplaySimulation, restore_seconds_per_epoch,
                         simulate_inner_probe_replay,
                         simulate_outer_probe_replay,
                         simulate_parallel_replay_fraction, simulate_scaleout)
from . import experiments

__all__ = [
    "Machine", "Cluster", "ideal_speedup", "achievable_speedup",
    "RecordSimulation", "simulate_record", "BACKGROUND_OVERHEAD_FACTOR",
    "ReplaySimulation", "restore_seconds_per_epoch",
    "simulate_outer_probe_replay", "simulate_inner_probe_replay",
    "simulate_parallel_replay_fraction", "simulate_scaleout",
    "ReplayCostComparison", "compare_replay_costs", "checkpoint_storage_cost",
    "experiments",
]
