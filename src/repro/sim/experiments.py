"""One function per table/figure of the paper's evaluation.

Each function returns plain rows (lists of dicts) so the benchmark harness,
the tests and EXPERIMENTS.md all consume the same data.  ``format_table``
renders rows the way the paper prints them.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import FlorConfig
from ..modes import InitStrategy
from ..record.materializer import create_materializer
from ..storage.checkpoint_store import CheckpointStore
from ..storage.serializer import ValueSnapshot
from ..workloads.registry import WORKLOADS, workload_names
from .cost_model import checkpoint_storage_cost, compare_replay_costs
from .record_sim import simulate_record
from .replay_sim import (simulate_inner_probe_replay, simulate_outer_probe_replay,
                         simulate_parallel_replay_fraction, simulate_scaleout)

__all__ = [
    "table3_workloads", "table4_storage_costs",
    "figure5_materialization_microbenchmark", "figure7_adaptive_overhead",
    "figure10_parallel_replay_fraction", "figure11_record_overhead",
    "figure12_replay_latency", "figure13_scaleout", "figure14_parallel_cost",
    "format_table",
]


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render rows as a fixed-width text table (for benches and docs)."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0])
    widths = {col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
              for col in columns}
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col)).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


# ---------------------------------------------------------------------- #
# Tables
# ---------------------------------------------------------------------- #
def table3_workloads() -> list[dict]:
    """Table 3: the eight evaluation workloads."""
    rows = []
    for name in workload_names():
        spec = WORKLOADS[name]
        rows.append({
            "Name": spec.name,
            "Benchmark": spec.benchmark,
            "Task": spec.task,
            "Model": spec.model,
            "Dataset": spec.dataset,
            "Train/Tune": "Fine-Tune" if spec.is_fine_tune else "Train",
            "Epochs": spec.epochs,
        })
    return rows


def table4_storage_costs() -> list[dict]:
    """Table 4: gzip-compressed checkpoint size and monthly S3 cost per run."""
    rows = []
    for name in workload_names():
        spec = WORKLOADS[name]
        nbytes, cost = checkpoint_storage_cost(spec)
        rows.append({
            "Name": spec.name,
            "Checkpoint Size (GB)": nbytes / 1024 ** 3,
            "Storage Cost / Mo. ($)": cost,
        })
    return sorted(rows, key=lambda row: row["Checkpoint Size (GB)"])


# ---------------------------------------------------------------------- #
# Figure 5: background materialization microbenchmark (live measurement)
# ---------------------------------------------------------------------- #
def figure5_materialization_microbenchmark(
        run_dir, payload_mb: int = 8, arrays: int = 16,
        strategies: tuple[str, ...] = ("sequential", "ipc_queue",
                                       "shared_memory", "fork", "thread"),
        ) -> list[dict]:
    """Measure main-thread blocking time of each materialization strategy.

    The paper's experiment materializes a 1.1 GB RTE checkpoint; here the
    payload is scaled down (default 8 MB) so the measurement runs in
    milliseconds, but the ranking — strategies that serialize on the main
    thread block it for longer — is preserved.
    """
    rng = np.random.default_rng(0)
    per_array = max(int(payload_mb * 1024 ** 2 / arrays / 4), 1)
    payload = {f"weight_{index}": rng.standard_normal(per_array).astype(np.float32)
               for index in range(arrays)}
    snapshots = [ValueSnapshot(name="model", kind="state_dict", payload=payload)]

    rows = []
    for strategy in strategies:
        store = CheckpointStore(run_dir / f"fig5-{strategy}", compress=False)
        materializer = create_materializer(strategy, store)
        start = time.perf_counter()
        ticket = materializer.submit("fig5", 0, snapshots)
        main_thread_seconds = time.perf_counter() - start
        materializer.close()
        total_seconds = time.perf_counter() - start
        rows.append({
            "Strategy": strategy,
            "Main-thread seconds": main_thread_seconds,
            "Total seconds": total_seconds,
            "Payload MB": payload_mb,
            "Blocked fraction": (main_thread_seconds / total_seconds
                                 if total_seconds > 0 else 1.0),
            "Ticket nbytes": ticket.payload_nbytes,
        })
    return rows


# ---------------------------------------------------------------------- #
# Figures 7 and 11: record overhead
# ---------------------------------------------------------------------- #
def figure7_adaptive_overhead(epsilon: float = FlorConfig().epsilon) -> list[dict]:
    """Figure 7: record overhead with and without adaptive checkpointing."""
    rows = []
    for name in workload_names():
        spec = WORKLOADS[name]
        with_adaptive = simulate_record(spec, adaptive=True, epsilon=epsilon)
        without_adaptive = simulate_record(spec, adaptive=False, epsilon=epsilon)
        rows.append({
            "Workload": name,
            "Overhead (adaptive)": with_adaptive.overhead_fraction,
            "Overhead (adaptivity disabled)": without_adaptive.overhead_fraction,
            "Tolerance": epsilon,
            "Checkpoints (adaptive)": with_adaptive.checkpoints_materialized,
            "Epochs": spec.epochs,
        })
    return rows


def figure11_record_overhead() -> list[dict]:
    """Figure 11: training time with and without Flor record, in hours."""
    rows = []
    for name in workload_names():
        spec = WORKLOADS[name]
        simulation = simulate_record(spec)
        rows.append({
            "Workload": name,
            "Vanilla hours": simulation.vanilla_seconds / 3600,
            "Record hours": simulation.record_seconds / 3600,
            "Overhead": simulation.overhead_fraction,
        })
    return rows


# ---------------------------------------------------------------------- #
# Figures 10, 12, 13: replay
# ---------------------------------------------------------------------- #
def figure10_parallel_replay_fraction(num_gpus: int = 4) -> list[dict]:
    """Figure 10: parallel replay time as a fraction of vanilla re-execution."""
    rows = []
    for name in workload_names():
        spec = WORKLOADS[name]
        record = simulate_record(spec)
        strong = simulate_parallel_replay_fraction(
            spec, record, num_gpus=num_gpus,
            init_strategy=InitStrategy.STRONG)
        weak = simulate_parallel_replay_fraction(
            spec, record, num_gpus=num_gpus, init_strategy=InitStrategy.WEAK)
        rows.append({
            "Workload": name,
            "Fraction (strong init)": strong,
            "Fraction (weak init)": weak,
            "Ideal fraction": 1.0 / num_gpus,
            "Partitions": (record.checkpoints_materialized
                           if record.checkpoints_materialized < spec.epochs
                           else spec.epochs),
        })
    return rows


def figure12_replay_latency(num_gpus_outer: int = 4,
                            max_machines: int = 4,
                            gpus_per_machine: int = 4) -> list[dict]:
    """Figure 12: replay latency by probe position (outer vs inner loop)."""
    rows = []
    for name in workload_names():
        spec = WORKLOADS[name]
        record = simulate_record(spec)
        outer = simulate_outer_probe_replay(spec, record, num_gpus=num_gpus_outer)
        inner = simulate_inner_probe_replay(
            spec, record, num_gpus=max_machines * gpus_per_machine)
        rows.append({
            "Workload": name,
            "Vanilla hours": spec.vanilla_hours,
            "Outer-probe replay hours": outer.replay_seconds / 3600,
            "Outer-probe speedup": outer.speedup,
            "Inner-probe replay hours": inner.replay_seconds / 3600,
            "Inner-probe speedup": inner.speedup,
        })
    return rows


def figure13_scaleout(workload: str = "RsNt",
                      machines: tuple[int, ...] = (1, 2, 3, 4)) -> list[dict]:
    """Figure 13: RsNt replay speedup as 4-GPU machines are added."""
    spec = WORKLOADS[workload]
    speedups = simulate_scaleout(spec, machines=list(machines))
    rows = []
    for machine_count, speedup in speedups.items():
        workers = machine_count * 4
        rows.append({
            "Machines": machine_count,
            "GPUs": workers,
            "Speedup": speedup,
            "Ideal speedup": float(min(workers, spec.epochs)),
        })
    return rows


# ---------------------------------------------------------------------- #
# Figure 14: cost of parallelism
# ---------------------------------------------------------------------- #
def figure14_parallel_cost() -> list[dict]:
    """Figure 14: serial vs parallel replay cost for every workload."""
    rows = []
    for name in workload_names():
        spec = WORKLOADS[name]
        comparison = compare_replay_costs(spec)
        rows.append({
            "Workload": name,
            "Serial hours": comparison.serial_hours,
            "Serial cost ($)": comparison.serial_cost_usd,
            "Parallel machines": comparison.parallel_machines,
            "Parallel hours": comparison.parallel_hours,
            "Parallel cost ($)": comparison.parallel_cost_usd,
            "Marginal cost ($)": comparison.marginal_cost_usd,
            "Hours saved": comparison.time_saved_hours,
        })
    return rows
