"""Dollar-cost model for replay and checkpoint storage (Figure 14, Table 4).

Figure 14 compares running the same amount of replay work serially on a
single-GPU P3.2xLarge against running it in parallel on one or more 4-GPU
P3.8xLarge machines: the parallel configuration finishes in a fraction of
the time but runs on proportionally more expensive hardware, so the dollar
costs end up nearly equal while the wall-clock savings are large.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SimulationError
from ..storage.costs import INSTANCE_PRICES, storage_cost_per_month
from ..workloads.registry import WorkloadSpec
from .cluster import achievable_speedup
from .record_sim import RecordSimulation, simulate_record

__all__ = ["ReplayCostComparison", "compare_replay_costs",
           "checkpoint_storage_cost"]


@dataclass
class ReplayCostComparison:
    """Serial vs parallel cost of one workload's full replay (Figure 14)."""

    workload: str
    serial_hours: float
    serial_cost_usd: float
    parallel_machines: int
    parallel_hours: float
    parallel_cost_usd: float

    @property
    def time_saved_hours(self) -> float:
        return self.serial_hours - self.parallel_hours

    @property
    def marginal_cost_usd(self) -> float:
        """Extra dollars paid for the parallel configuration."""
        return self.parallel_cost_usd - self.serial_cost_usd


def _useful_machines(epochs: int, gpus_per_machine: int, max_machines: int) -> int:
    """Number of machines that still yields parallelism gains for ``epochs``."""
    best = 1
    best_speedup = achievable_speedup(epochs, gpus_per_machine)
    for machines in range(2, max_machines + 1):
        speedup = achievable_speedup(epochs, machines * gpus_per_machine)
        if speedup > best_speedup:
            best, best_speedup = machines, speedup
    return best


def compare_replay_costs(spec: WorkloadSpec,
                         record: RecordSimulation | None = None,
                         serial_instance: str = "p3.2xlarge",
                         parallel_instance: str = "p3.8xlarge",
                         max_machines: int = 4) -> ReplayCostComparison:
    """Compare the dollar cost of serial and parallel full replay.

    Serial replay runs the whole job on one single-GPU instance; parallel
    replay uses as many 4-GPU machines (up to ``max_machines``) as still
    provide parallelism gains, as in the paper's Figure 14 setup.
    """
    if serial_instance not in INSTANCE_PRICES:
        raise SimulationError(f"unknown instance {serial_instance!r}")
    if parallel_instance not in INSTANCE_PRICES:
        raise SimulationError(f"unknown instance {parallel_instance!r}")
    record = record if record is not None else simulate_record(spec)

    serial_hours = spec.vanilla_hours
    serial_cost = serial_hours * INSTANCE_PRICES[serial_instance].hourly_usd

    gpus_per_machine = INSTANCE_PRICES[parallel_instance].gpus
    # Sparse checkpointing limits the number of restartable partitions.
    partitions = min(spec.epochs,
                     max(record.checkpoints_materialized, 1)
                     if record.checkpoints_materialized < spec.epochs
                     else spec.epochs)
    machines = _useful_machines(partitions, gpus_per_machine, max_machines)
    workers = min(machines * gpus_per_machine, partitions)
    speedup = achievable_speedup(spec.epochs, workers)
    parallel_hours = spec.vanilla_hours / speedup
    parallel_cost = (parallel_hours * machines
                     * INSTANCE_PRICES[parallel_instance].hourly_usd)

    return ReplayCostComparison(
        workload=spec.name,
        serial_hours=serial_hours,
        serial_cost_usd=serial_cost,
        parallel_machines=machines,
        parallel_hours=parallel_hours,
        parallel_cost_usd=parallel_cost)


def checkpoint_storage_cost(spec: WorkloadSpec) -> tuple[int, float]:
    """Table 4: (compressed checkpoint bytes, monthly S3 cost in USD)."""
    nbytes = spec.checkpoint_nbytes
    return nbytes, storage_cost_per_month(nbytes)
