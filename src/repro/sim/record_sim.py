"""Paper-scale simulation of the record phase (Figures 7 and 11, Table 4).

The simulator replays the adaptive-checkpointing decision process for each
Table 3 workload at paper scale: every epoch, the Joint Invariant
(:class:`repro.record.adaptive.AdaptiveController` — the *same* controller
the live system uses) decides whether that epoch's Loop End Checkpoint is
materialized.  Costs are derived from the workload's published measurements:

* one epoch of computation costs ``spec.epoch_seconds`` (Figure 11's vanilla
  hours divided by Table 3's epoch count);
* materializing one epoch's checkpoint costs
  ``spec.record_overhead_nonadaptive * epoch_seconds`` when done in the
  foreground — by construction, checkpointing every epoch in the foreground
  then reproduces the paper's adaptivity-disabled overhead — and a fraction
  of that when background materialization is enabled (Section 5.1 reports
  background materialization cutting average overhead from 4.76% to 1.74%,
  a ~0.37x factor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DEFAULT_EPSILON, PAPER_MEASURED_SCALING_FACTOR
from ..record.adaptive import AdaptiveController
from ..workloads.registry import WorkloadSpec

__all__ = ["BACKGROUND_OVERHEAD_FACTOR", "RecordSimulation", "simulate_record"]

#: Fraction of foreground materialization cost that remains on the training
#: thread when materialization happens in the background (Section 5.1:
#: 4.76% -> 1.74% average overhead, i.e. ~0.37 of the foreground cost).
BACKGROUND_OVERHEAD_FACTOR = 1.74 / 4.76


@dataclass
class RecordSimulation:
    """Outcome of simulating one record run at paper scale."""

    workload: str
    epochs: int
    adaptive: bool
    background: bool
    vanilla_seconds: float
    record_seconds: float
    checkpoints_materialized: int
    checkpoint_epochs: list[int] = field(default_factory=list)
    materialize_seconds_per_checkpoint: float = 0.0
    stored_nbytes: int = 0

    @property
    def overhead_fraction(self) -> float:
        """Record overhead relative to the vanilla execution (Figure 11)."""
        if self.vanilla_seconds <= 0:
            return 0.0
        return (self.record_seconds - self.vanilla_seconds) / self.vanilla_seconds

    @property
    def checkpoint_density(self) -> float:
        """Fraction of epochs whose checkpoint was materialized."""
        if self.epochs == 0:
            return 0.0
        return self.checkpoints_materialized / self.epochs


def simulate_record(spec: WorkloadSpec, adaptive: bool = True,
                    background: bool = True,
                    epsilon: float = DEFAULT_EPSILON,
                    scaling_factor: float = PAPER_MEASURED_SCALING_FACTOR
                    ) -> RecordSimulation:
    """Simulate one record-phase execution of ``spec`` at paper scale."""
    epoch_seconds = spec.epoch_seconds
    bytes_per_epoch = spec.checkpoint_nbytes_per_epoch

    # Main-thread cost of materializing one epoch's checkpoint with
    # background materialization enabled, derived so that "checkpoint every
    # epoch" reproduces the paper's adaptivity-disabled overhead for this
    # workload (Figure 7's upward arrows).  Disabling background
    # materialization scales the cost back up by the Section 5.1 factor.
    background_materialize_seconds = (
        spec.record_overhead_nonadaptive * epoch_seconds)
    effective_materialize_seconds = (
        background_materialize_seconds if background
        else background_materialize_seconds / BACKGROUND_OVERHEAD_FACTOR)

    controller = AdaptiveController(epsilon=epsilon,
                                    scaling_factor=scaling_factor,
                                    enabled=adaptive)
    # Pin the controller's throughput model so its estimate of the
    # materialization time matches the workload's derived cost exactly.
    if effective_materialize_seconds > 0:
        controller._throughput = bytes_per_epoch / effective_materialize_seconds

    block_id = f"{spec.name}-training-loop"
    overhead_seconds = 0.0
    checkpoint_epochs: list[int] = []
    for epoch in range(spec.epochs):
        controller.observe_execution(block_id, epoch_seconds)
        decision = controller.should_materialize(
            block_id, epoch_seconds, int(bytes_per_epoch))
        if decision.materialize:
            controller.observe_materialization(
                block_id, effective_materialize_seconds, int(bytes_per_epoch))
            overhead_seconds += effective_materialize_seconds
            checkpoint_epochs.append(epoch)

    vanilla_seconds = spec.vanilla_seconds
    return RecordSimulation(
        workload=spec.name,
        epochs=spec.epochs,
        adaptive=adaptive,
        background=background,
        vanilla_seconds=vanilla_seconds,
        record_seconds=vanilla_seconds + overhead_seconds,
        checkpoints_materialized=len(checkpoint_epochs),
        checkpoint_epochs=checkpoint_epochs,
        materialize_seconds_per_checkpoint=effective_materialize_seconds,
        stored_nbytes=int(bytes_per_epoch * len(checkpoint_epochs)),
    )
