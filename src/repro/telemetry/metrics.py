"""Metrics registry: cheap named counters, gauges and histograms.

Complements the span tracer with aggregate numbers that would be wasteful
to record as individual spans — dedup hits, chunk reuse, bytes in/out,
spool queue depth, codec choice distribution.  Updates are a dict lookup
plus an addition under a lock (uncontended in practice: the hot updaters
are the spool workers and the record thread, touching different names),
and the whole registry snapshots to a plain dict for persistence.

Like the tracer, the registry is disabled by default and every mutator
returns immediately after one attribute check when disabled.
"""

from __future__ import annotations

import threading
from typing import Any


class Counter:
    """Monotonically increasing count (events, bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value (queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observations: count/sum/min/max.

    Full quantile sketches are overkill here — the span buffer already
    holds individual durations; histograms cover high-volume observations
    (payload sizes) where only the envelope matters.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.min,
            "max": self.max,
            "mean": round(self.total / self.count, 9),
        }


class MetricsRegistry:
    """Named metric instruments, created lazily on first update."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def configure(self, enabled: bool | None = None) -> "MetricsRegistry":
        if enabled is not None:
            self.enabled = bool(enabled)
        return self

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- updates (no-ops when disabled) ------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        if not self.enabled:
            return
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            counter.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict snapshot, stable key order for readable JSON."""
        with self._lock:
            return {
                "counters": {name: self._counters[name].value
                             for name in sorted(self._counters)},
                "gauges": {name: self._gauges[name].value
                           for name in sorted(self._gauges)},
                "histograms": {name: self._histograms[name].summary()
                               for name in sorted(self._histograms)},
            }


_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry all instrumentation sites share."""
    return _metrics
