"""Flight recorder: unified tracing and metrics for record/replay/query.

Public surface:

* :func:`span` / :func:`trace` / :func:`configure` / :func:`get_tracer` —
  the process-wide span tracer (off by default; ``FlorConfig.telemetry``
  turns it on for sessions and queries).
* :func:`get_metrics` — the process-wide counters/gauges/histograms.
* :func:`current_document` / :func:`chrome_trace` / :func:`render_timeline`
  — persistence and export of captured telemetry.
"""

from .document import (
    DOCUMENT_SCHEMA,
    METADATA_KEY,
    chrome_trace,
    current_document,
    document_spans,
    render_timeline,
    spans_from_chrome_trace,
)
from .metrics import MetricsRegistry, get_metrics
from .tracer import (
    DEFAULT_CAPACITY,
    NOOP_SPAN,
    ActiveSpan,
    Span,
    SpanTracer,
    configure,
    get_tracer,
    span,
    trace,
    walk_children,
)

__all__ = [
    "ActiveSpan",
    "NOOP_SPAN",
    "DEFAULT_CAPACITY",
    "DOCUMENT_SCHEMA",
    "METADATA_KEY",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "configure",
    "current_document",
    "document_spans",
    "get_metrics",
    "get_tracer",
    "render_timeline",
    "span",
    "spans_from_chrome_trace",
    "trace",
    "walk_children",
]


def enable_from_config(config) -> None:
    """Turn the flight recorder on when ``config.telemetry`` asks for it.

    Called by sessions and queries at open.  Never turns telemetry *off*:
    an explicitly enabled tracer (e.g. a bench harness calling
    :func:`configure`) survives sessions whose config leaves the knob at
    its default.
    """
    if getattr(config, "telemetry", False):
        capacity = getattr(config, "telemetry_buffer", None)
        configure(enabled=True, capacity=capacity)
        get_metrics().configure(enabled=True)


def reset_for_worker() -> None:
    """Clear inherited telemetry state at worker-process entry.

    A forked replay worker inherits the parent's span buffer; without a
    reset it would ship the parent's spans back and double-count them.
    """
    get_tracer().reset()
    get_metrics().reset()
