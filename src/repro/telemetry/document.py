"""Telemetry documents: persistence format and exporters.

A telemetry document is the compact, JSON-ready capture of a session's or
query's flight recorder — the span ring buffer plus the metrics snapshot
— written as store metadata next to the run (the same channel as
``iteration_stats``) and consumed by ``python -m repro.trace``.

Two export shapes:

* :func:`chrome_trace` — Chrome trace-event format (the ``traceEvents``
  envelope with ``ph: "X"`` complete events), loadable in
  ``chrome://tracing`` and Perfetto.  Timestamps are the spans' epoch
  wall-clock starts in microseconds, so spans recorded in different
  processes line up on one timeline.
* :func:`render_timeline` — a monospaced timeline table (offset,
  duration, pid, nesting-indented name, attrs) for terminal use.
"""

from __future__ import annotations

import time
from typing import Any

from ..utils.timing import format_duration
from .metrics import get_metrics
from .tracer import Span, get_tracer

#: Version of the persisted telemetry document.
DOCUMENT_SCHEMA = 1

#: Store-metadata key under which sessions persist their document.
METADATA_KEY = "telemetry"


def current_document(meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """Capture the process-wide tracer + metrics as a persistable document.

    The span buffer is process-global, so a document captured at session
    close can also carry spans from earlier activity in the same process;
    the ring bound keeps it compact either way.
    """
    document = {
        "schema": DOCUMENT_SCHEMA,
        "captured_at": round(time.time(), 6),
        "spans": get_tracer().export(),
        "metrics": get_metrics().snapshot(),
    }
    if meta:
        document["meta"] = dict(meta)
    return document


def document_spans(document: dict[str, Any]) -> list[Span]:
    """Decode a document's span payloads back into :class:`Span` objects."""
    return [Span.from_dict(payload)
            for payload in document.get("spans") or []]


def chrome_trace(spans: list[Span]) -> dict[str, Any]:
    """Convert spans to Chrome trace-event JSON (complete ``"X"`` events).

    Span ids ride in ``args`` so the original tree round-trips through
    the export (see :func:`spans_from_chrome_trace`).
    """
    events = []
    for span in spans:
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": int(span.start * 1e6),
            "dur": max(1, int(span.duration * 1e6)),
            "pid": span.pid,
            "tid": span.thread_id,
            "args": args,
        })
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome_trace(trace: dict[str, Any]) -> list[Span]:
    """Inverse of :func:`chrome_trace` (schema round-trip support)."""
    spans = []
    for event in trace.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        spans.append(Span(
            name=str(event["name"]),
            span_id=str(span_id) if span_id is not None else "",
            parent_id=parent_id,
            start=event.get("ts", 0) / 1e6,
            duration=event.get("dur", 0) / 1e6,
            pid=int(event.get("pid", 0)),
            thread_id=int(event.get("tid", 0)),
            attrs=args,
        ))
    return spans


def render_timeline(spans: list[Span], limit: int | None = None) -> str:
    """Render spans as a nesting-indented timeline table.

    Offsets are relative to the earliest span so the column stays
    readable for epoch timestamps; children are indented under their
    parent when the parent is present in the capture.
    """
    if not spans:
        return "(no spans)"
    ordered = sorted(spans, key=lambda span: span.start)
    if limit is not None:
        ordered = ordered[:limit]
    base = ordered[0].start
    depths: dict[str, int] = {}
    by_id = {span.span_id: span for span in ordered}
    def depth_of(span: Span) -> int:
        seen = 0
        current = span
        while current.parent_id is not None and seen < 32:
            parent = by_id.get(current.parent_id)
            if parent is None:
                break
            seen += 1
            current = parent
        return seen
    for span in ordered:
        depths[span.span_id] = depth_of(span)
    lines = [f"{'OFFSET':>10}  {'DURATION':>9}  {'PID':>7}  NAME"]
    for span in ordered:
        indent = "  " * depths[span.span_id]
        attrs = " ".join(f"{key}={value}"
                         for key, value in sorted(span.attrs.items()))
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{'+' + format_duration(span.start - base):>10}  "
            f"{format_duration(span.duration):>9}  "
            f"{span.pid:>7}  {indent}{span.name}{suffix}")
    return "\n".join(lines)
