"""Low-overhead span tracer: the flight recorder's timing backbone.

A *span* is one timed operation — a record-loop iteration, a checkpoint
serialize, a replay restore, a query plan — with a name, free-form
attributes, a wall-clock start, a monotonic duration, and a parent link so
nested operations form a tree.  Spans land in a bounded in-memory ring
buffer (a ``deque`` with ``maxlen``), so tracing an arbitrarily long
training run costs bounded memory: old spans fall off the back.

Design constraints, in priority order:

1. **Near-zero cost when disabled.**  Tracing is off by default
   (``FlorConfig.telemetry``); every instrumentation site goes through
   :meth:`SpanTracer.span` / :meth:`SpanTracer.start`, which return a
   shared no-op singleton after a single attribute check when disabled.
   No allocation, no clock read, no lock.
2. **Cross-process composition.**  Replay workers run in separate
   processes; their spans are exported as plain dicts, shipped back
   through the existing worker-result channel, and re-parented under the
   dispatching span with :meth:`SpanTracer.ingest` so one trace covers
   the whole fan-out.  Span ids embed the pid, so ids never collide
   across processes.
3. **Two clocks, deliberately.**  ``start`` is ``time.time()`` (epoch
   seconds) so spans from different processes align on one timeline;
   ``duration`` is measured with :func:`repro.utils.timing.monotonic`
   so it is immune to clock steps.  The Chrome-trace exporter consumes
   exactly this pair.

Thread-safety: the ring buffer append is guarded by a lock; the parent
stack is thread-local, so concurrent threads (e.g. spool workers) each
get their own span nesting and never see each other's parents.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from collections import deque
from typing import Any, Callable, Iterator

from ..utils.timing import monotonic

#: Default ring-buffer capacity (spans). Matches FlorConfig.telemetry_buffer.
DEFAULT_CAPACITY = 4096

#: Payload schema version for exported span dicts.
SPAN_SCHEMA = 1


@dataclass(frozen=True)
class Span:
    """One completed, timed operation."""

    name: str
    span_id: str
    parent_id: str | None
    start: float          # wall-clock epoch seconds (time.time)
    duration: float       # seconds, measured on the monotonic clock
    pid: int
    thread_id: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used for persistence and cross-process transport."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "duration": round(self.duration, 9),
            "pid": self.pid,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            name=str(payload["name"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            start=float(payload.get("start", 0.0)),
            duration=float(payload.get("duration", 0.0)),
            pid=int(payload.get("pid", 0)),
            thread_id=int(payload.get("thread_id", 0)),
            attrs=dict(payload.get("attrs") or {}),
        )


class _NoopSpan:
    """Shared do-nothing handle returned by a disabled tracer.

    Supports the full ActiveSpan surface (context manager, ``set``,
    ``end``) so instrumentation sites never branch on the enabled flag.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def end(self) -> None:
        return None

    @property
    def span_id(self) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class ActiveSpan:
    """A span that has started but not yet ended.

    Usable as a context manager or via explicit :meth:`end` for
    begin/end seams that do not nest lexically (e.g. the record loop's
    per-iteration bracket).
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs",
                 "_wall_start", "_mono_start", "_ended")

    def __init__(self, tracer: "SpanTracer", name: str,
                 parent_id: str | None, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._wall_start = time.time()
        self._mono_start = monotonic()
        self._ended = False

    def set(self, **attrs) -> "ActiveSpan":
        """Attach or update attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        """Close the span and append it to the tracer's ring buffer."""
        if self._ended:
            return
        self._ended = True
        duration = monotonic() - self._mono_start
        self._tracer._finish(self, duration)

    def __enter__(self) -> "ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()


class SpanTracer:
    """Bounded ring-buffer span collector with thread-local nesting."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._capacity = max(16, int(capacity))
        self._buffer: deque[Span] = deque(maxlen=self._capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = itertools.count(1)

    # -- configuration -----------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def configure(self, enabled: bool | None = None,
                  capacity: int | None = None) -> "SpanTracer":
        """Flip the enabled flag and/or resize the ring buffer.

        Enabling never clears collected spans; resizing keeps the newest
        spans that fit.  Returns ``self`` for chaining.
        """
        with self._lock:
            if capacity is not None and int(capacity) != self._capacity:
                self._capacity = max(16, int(capacity))
                self._buffer = deque(self._buffer, maxlen=self._capacity)
            if enabled is not None:
                self.enabled = bool(enabled)
        return self

    def reset(self) -> None:
        """Drop all collected spans and any open parent stacks.

        Called at worker-process entry: a forked child inherits the
        parent's buffer and must not re-ship the parent's spans.
        """
        with self._lock:
            self._buffer.clear()
        self._local = threading.local()

    # -- span creation -----------------------------------------------------

    def span(self, name: str, **attrs):
        """Start a span; use as a context manager.

        Returns the shared no-op singleton when tracing is disabled, so
        the disabled cost is one attribute check and one call.
        """
        if not self.enabled:
            return NOOP_SPAN
        return self.start(name, **attrs)

    def start(self, name: str, **attrs):
        """Start a span for an explicit begin/end seam (non-lexical nesting).

        The caller must invoke ``.end()`` on the returned handle; until
        then the span is the parent of any span started on this thread.
        """
        if not self.enabled:
            return NOOP_SPAN
        stack = self._stack()
        handle = ActiveSpan(self, name, stack[-1] if stack else None,
                            dict(attrs))
        stack.append(handle.span_id)
        return handle

    def trace(self, name: str | None = None) -> Callable:
        """Decorator: wrap a callable in a span named after it."""
        def decorate(fn: Callable) -> Callable:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.start(label):
                    return fn(*args, **kwargs)
            return wrapper
        return decorate

    # -- collection --------------------------------------------------------

    def _finish(self, handle: ActiveSpan, duration: float) -> None:
        stack = self._stack()
        # Tolerate out-of-order ends: remove this id wherever it sits.
        try:
            stack.remove(handle.span_id)
        except ValueError:
            pass
        span = Span(
            name=handle.name,
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            start=handle._wall_start,
            duration=duration,
            pid=os.getpid(),
            thread_id=threading.get_ident(),
            attrs=handle.attrs,
        )
        with self._lock:
            self._buffer.append(span)

    def ingest(self, payloads: list[dict[str, Any]],
               parent_id: str | None = None) -> int:
        """Append spans exported by another process.

        Root spans in ``payloads`` (those with no parent) are re-parented
        under ``parent_id`` — the dispatching span on this side — so the
        merged trace stays a single tree.  Returns the number ingested.
        """
        if not payloads:
            return 0
        spans = []
        for payload in payloads:
            span = Span.from_dict(payload)
            if span.parent_id is None and parent_id is not None:
                span = Span(name=span.name, span_id=span.span_id,
                            parent_id=parent_id, start=span.start,
                            duration=span.duration, pid=span.pid,
                            thread_id=span.thread_id, attrs=span.attrs)
            spans.append(span)
        with self._lock:
            self._buffer.extend(spans)
        return len(spans)

    # -- export ------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Snapshot the ring buffer, oldest first."""
        with self._lock:
            return list(self._buffer)

    def export(self) -> list[dict[str, Any]]:
        """Snapshot as plain dicts (persistence / cross-process transport)."""
        return [span.to_dict() for span in self.spans()]

    def drain(self) -> list[dict[str, Any]]:
        """Export and clear — the worker-side half of span shipping."""
        with self._lock:
            spans = list(self._buffer)
            self._buffer.clear()
        return [span.to_dict() for span in spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    # -- internals ---------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> str:
        return f"{os.getpid():x}-{next(self._seq):x}"


_tracer = SpanTracer()


def get_tracer() -> SpanTracer:
    """The process-wide tracer all instrumentation sites share."""
    return _tracer


def configure(enabled: bool | None = None,
              capacity: int | None = None) -> SpanTracer:
    """Configure the process-wide tracer (see :meth:`SpanTracer.configure`)."""
    return _tracer.configure(enabled=enabled, capacity=capacity)


def span(name: str, **attrs):
    """Start a span on the process-wide tracer (context manager)."""
    return _tracer.span(name, **attrs)


def trace(name: str | None = None) -> Callable:
    """Decorator tracing a callable on the process-wide tracer."""
    return _tracer.trace(name)


def walk_children(spans: list[Span], root_id: str) -> Iterator[Span]:
    """Yield every span in ``spans`` whose parent chain reaches ``root_id``."""
    by_parent: dict[str | None, list[Span]] = {}
    for item in spans:
        by_parent.setdefault(item.parent_id, []).append(item)
    frontier = [root_id]
    while frontier:
        current = frontier.pop()
        for child in by_parent.get(current, ()):
            yield child
            frontier.append(child.span_id)
