"""The hindsight query engine: ask for values across past training runs.

The paper's end goal is not replay for its own sake but *hindsight
queries*: a model developer asks for values from past runs ("``loss`` and
``grad_norm`` for epochs 10-50 across my last 8 runs") and the system
computes them as cheaply as possible.  This package is the layer above
record/replay/storage that answers such queries:

* :mod:`repro.query.catalog` — the multi-run catalog indexing every
  recorded execution across storage backends,
* :mod:`repro.query.planner` — the cost-based planner resolving each
  requested value to its cheapest source (logged read, memoized read, or a
  checkpoint-aligned replay span),
* :mod:`repro.query.executor` — batched replay-job execution, parallel
  across runs and spans,
* :mod:`repro.query.memo` — the memoization cache writing replayed values
  back through the storage backend,
* :mod:`repro.query.dataframe` — the columnar query result,
* :mod:`repro.query.api` — the ``repro.query(...)`` entry point,
* :mod:`repro.query.diff` — the cross-run drift diff
  (``repro.diff(run_a, run_b, values)``): first diverging iteration per
  value via digest pre-narrowing plus O(log n) probe bisection.
"""

from .api import PreparedQuery, prepare_query, query
from .catalog import JobGroup, RunCatalog, RunEntry
from .dataframe import QueryResult, QueryRow, QueryStats, ReplayJobRecord
from .diff import DiffResult, DiffStats, ValueDrift, diff
from .explain import ExplainReport, RunExplain, SpanChoice, explain
from .memo import MemoCache
from .planner import QueryPlan, ReplaySpan, RunPlan, plan_run, plan_spans

__all__ = [
    "query", "prepare_query", "PreparedQuery",
    "explain", "ExplainReport", "RunExplain", "SpanChoice",
    "RunCatalog", "RunEntry", "JobGroup",
    "diff", "DiffResult", "DiffStats", "ValueDrift",
    "QueryResult", "QueryRow", "QueryStats", "ReplayJobRecord",
    "MemoCache", "QueryPlan", "ReplaySpan", "RunPlan",
    "plan_run", "plan_spans",
]
