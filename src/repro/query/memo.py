"""Cross-query replay memoization: write replayed values back to storage.

Replay is the expensive resolution path, so its output is never thrown
away: every value a query-driven replay produces (requested or not — spans
log everything they pass over) is written back through the run's storage
backend.  A repeated or overlapping query then resolves those cells as
``memo`` reads and schedules zero replay jobs.

Entries are keyed by the digest of the *probe source* that produced them:
hindsight values are a function of the replayed script, so a different
probe source (say, a changed ``grad_norm`` definition) must miss rather
than serve stale values.  The full digest is stored inside the entry and
verified on load, so the shortened key cannot alias across sources.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..record.logger import LogRecord
from ..storage.checkpoint_store import CheckpointStore
from ..telemetry import get_metrics, get_tracer

__all__ = ["MEMO_KEY_PREFIX", "MemoCache", "source_digest"]

#: Store-metadata key namespace of memo entries (one entry per probe
#: source); enumerable via ``CheckpointStore.metadata_keys(MEMO_KEY_PREFIX)``.
MEMO_KEY_PREFIX = "memo:"

#: Entry layout version.
MEMO_SCHEMA_VERSION = 1


def source_digest(source_text: str) -> str:
    """Stable digest of a probe source.

    Line endings, trailing whitespace and blank lines are normalized away:
    none of them change what a replay computes, and the query planner uses
    digest (in)equality to decide whether a probe source can produce new
    values at all — a blank-line-only edit must not schedule replay jobs
    that cannot log anything.
    """
    normalized = "\n".join(line.rstrip()
                           for line in source_text.splitlines()
                           if line.strip())
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()


class MemoCache:
    """Memoized hindsight values of one run, for one probe source."""

    def __init__(self, store: CheckpointStore, digest: str):
        self.store = store
        self.digest = digest
        self.key = MEMO_KEY_PREFIX + digest[:16]
        self._values: dict[str, dict[int, object]] | None = None

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def load(self) -> dict[str, dict[int, object]]:
        """The memoized ``{name: {iteration: value}}`` view (cached)."""
        if self._values is None:
            with get_tracer().span("query.memo_load", key=self.key) as span:
                payload = self.store.get_metadata(self.key)
                if (not isinstance(payload, dict)
                        or payload.get("source_digest") != self.digest):
                    # Absent, from an older schema, or a shortened-key
                    # collision with a different probe source: treat as
                    # empty.
                    self._values = {}
                else:
                    self._values = {
                        name: {int(iteration): value
                               for iteration, value in per_name.items()}
                        for name, per_name in
                        (payload.get("values") or {}).items()
                    }
                span.set(cells=sum(len(per_name)
                                   for per_name in self._values.values()))
        return self._values

    def names(self) -> list[str]:
        return sorted(self.load())

    def cell_count(self) -> int:
        return sum(len(per_name) for per_name in self.load().values())

    # ------------------------------------------------------------------ #
    # Write-back
    # ------------------------------------------------------------------ #
    def write_back(self, records: Iterable[LogRecord]) -> int:
        """Merge replayed log records in; returns the number of new cells.

        Only main-loop records (``iteration`` set) are memoizable — they
        are the cells queries address.  Values are already JSON-normalized
        by the log manager, so they round-trip through the backend's
        metadata plane unchanged.

        The merge runs through :meth:`CheckpointStore.update_metadata`,
        one backend writer transaction around the read-modify-write — so
        two concurrent queries (the multi-tenant service coalesces
        executions, but distinct overlapping queries still race here)
        merge into the *latest stored* entry instead of each clobbering
        the other's cells with its own stale snapshot.
        """
        fresh = [(record.name, record.iteration, record.value)
                 for record in records if record.iteration is not None]
        if not fresh:
            return 0
        added_cells = 0

        def merge(stored):
            nonlocal added_cells
            if (not isinstance(stored, dict)
                    or stored.get("source_digest") != self.digest):
                values: dict[str, dict[str, object]] = {}
            else:
                values = {name: dict(per_name) for name, per_name in
                          (stored.get("values") or {}).items()}
            added_cells = 0  # recomputed per transaction attempt
            for name, iteration, value in fresh:
                per_name = values.setdefault(name, {})
                if str(iteration) not in per_name:
                    added_cells += 1
                per_name[str(iteration)] = value
            return {
                "schema_version": MEMO_SCHEMA_VERSION,
                "source_digest": self.digest,
                "values": values,
            }

        with get_tracer().span("query.memo_writeback",
                               key=self.key) as span:
            merged = self.store.update_metadata(self.key, merge)
            # Refresh the read cache from what the transaction settled on
            # (it may include another writer's cells).
            self._values = {
                name: {int(iteration): value
                       for iteration, value in per_name.items()}
                for name, per_name in (merged.get("values") or {}).items()
            }
            if added_cells:
                get_metrics().inc("query.memo_cells_written", added_cells)
            span.set(added=added_cells)
        return added_cells

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @staticmethod
    def keys(store: CheckpointStore) -> list[str]:
        """Every memo entry key persisted for ``store``'s run."""
        return store.metadata_keys(MEMO_KEY_PREFIX)
