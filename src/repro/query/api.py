"""The declarative hindsight query entry point: ``repro.query(...)``.

One call answers "fetch these values at these iterations across these
runs" as cheaply as the system can::

    import repro

    result = repro.query(values=["loss", "grad_norm"],
                         runs=None,                  # every cataloged run
                         iterations=slice(10, 50),
                         source="train_with_probes.py")
    result.pivot("grad_norm")       # {run_id: {iteration: value}}
    result.stats.summary()          # where every cell came from

The pipeline: the :class:`~repro.query.catalog.RunCatalog` selects runs,
the cost-based :mod:`~repro.query.planner` resolves each cell to logged /
memoized / replay, the :mod:`~repro.query.executor` runs the coalesced
replay spans on one process pool across runs, and the
:class:`~repro.query.memo.MemoCache` writes every replayed value back
through the storage backend so the next query skips the recompute.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .. import telemetry
from ..analysis.instrument import BlockSpec, instrument_source
from ..analysis.purity import (ProbeAnalysis, SAFE_BUILTINS,
                               evaluate_pure_logged)
from ..config import FlorConfig, get_config
from ..exceptions import QueryError
from ..record.logger import LogRecord, read_log
from ..record.recorder import ORIGINAL_SOURCE_NAME
from ..replay.probe import assert_probes_safe, detect_probed_blocks
from ..replay.scheduler import load_iteration_costs
from ..storage.checkpoint_store import CheckpointStore
from ..utils.timing import monotonic
from .catalog import RunCatalog, RunEntry
from .dataframe import QueryResult, QueryRow, QueryStats
from .executor import ExecutionOutcome, execute_span_jobs
from .memo import MemoCache, source_digest
from .planner import QueryPlan, balance_spans, plan_run

__all__ = ["PreparedQuery", "assemble_result", "planned_rows",
           "prepare_query", "query", "replay_rows"]


@dataclass
class PreparedQuery:
    """Everything the planner decided, before a single replay job runs.

    The shared output of the planning stage: :func:`query` executes it,
    :func:`repro.query.explain.explain` reports it without executing, and
    the multi-tenant service (:mod:`repro.service`) coalesces identical
    in-flight executions on :meth:`dedup_digest` and streams partial
    results span by span.  Memo caches stay open (their stores reopen
    lazily); call :meth:`close` when done with them.
    """

    config: FlorConfig
    names: tuple[str, ...]
    entries: list[RunEntry]
    plan: QueryPlan
    memos: dict[str, MemoCache] = field(default_factory=dict)
    sources_by_run: dict[str, str] = field(default_factory=dict)
    probed_by_run: dict[str, tuple[str, ...]] = field(default_factory=dict)
    aligned_by_run: dict[str, Sequence[int]] = field(default_factory=dict)
    costs_by_run: dict[str, object] = field(default_factory=dict)
    planner_seconds: float = 0.0
    processes: int = 1
    should_memoize: bool = True

    @property
    def requested_cells(self) -> int:
        return sum(len(run_plan.names) * len(run_plan.wanted_iterations)
                   for run_plan in self.plan.runs)

    def balanced_jobs(self, target_jobs: int | None = None
                      ) -> list[tuple[str, "object"]]:
        """The plan's replay spans, split to fill ``target_jobs`` workers."""
        return balance_spans(self.plan.span_jobs, self.aligned_by_run,
                             self.costs_by_run,
                             target_jobs=(self.processes
                                          if target_jobs is None
                                          else target_jobs))

    def dedup_digest(self) -> str:
        """Digest under which identical prepared queries coalesce.

        Two prepared queries share a digest iff their *normalized plans*
        are equal: the same requested value names, the same run set, the
        same wanted iterations per run, and the same probe-source digest
        per run (the memo key — already normalized for whitespace and
        blank lines).  Anything else (client id, planner timings, worker
        counts) is execution detail and deliberately excluded, so the
        service can serve concurrent identical queries from one
        execution.
        """
        document = {
            "names": sorted(self.names),
            "runs": [
                {
                    "run_id": run_plan.run_id,
                    "iterations": sorted(run_plan.wanted_iterations),
                    "source_digest": self.memos[run_plan.run_id].digest,
                }
                for run_plan in sorted(self.plan.runs,
                                       key=lambda plan: plan.run_id)
            ],
        }
        canonical = json.dumps(document, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def close(self) -> None:
        for memo in self.memos.values():
            memo.store.close()


def query(values: str | Sequence[str],
          runs: str | Iterable[str] | None = None,
          iterations: int | slice | Iterable[int] | None = None,
          source: str | Path | None = None,
          workload: str | None = None,
          config: FlorConfig | None = None,
          workers: int | None = None,
          memoize: bool | None = None,
          catalog: RunCatalog | None = None) -> QueryResult:
    """Fetch ``values`` at ``iterations`` across ``runs``, cheapest-first.

    Parameters
    ----------
    values:
        Value name or names (the first argument of ``flor.log``).
    runs:
        Run id(s), an id prefix, or None for every cataloged run under the
        configured Flor home.
    iterations:
        Main-loop iterations to fetch: an index, a ``slice`` (applied to
        each run's recorded range), an iterable of indices, or None for
        every recorded iteration.
    source:
        The probe source (script text or path) containing the hindsight
        logging statements that compute never-logged values.  Without it,
        only record-time logs and prior memoized replays can answer; cells
        needing recompute are reported missing rather than replayed (a
        verbatim replay of the recorded script cannot produce new values).
    workload:
        Restrict to runs recorded under this workload name.
    workers:
        Process-pool size for replay jobs (default
        ``FlorConfig.query_workers``).
    memoize:
        Write replayed values back to storage (default
        ``FlorConfig.query_memoize``).
    catalog:
        Reuse an already-open :class:`RunCatalog` (skips the home scan).
    """
    started = monotonic()
    config = config or get_config()
    telemetry.enable_from_config(config)
    tracer = telemetry.get_tracer()
    with tracer.span("query") as query_span:
        with tracer.span("query.plan"):
            prepared = prepare_query(values, runs, iterations, source,
                                     workload, config, workers, memoize,
                                     catalog)
        query_span.set(runs=len(prepared.entries),
                       values=",".join(prepared.names))

        jobs = prepared.balanced_jobs()
        with tracer.span("query.execute", jobs=len(jobs)):
            outcome = execute_span_jobs(jobs, prepared.sources_by_run,
                                        prepared.probed_by_run, config,
                                        processes=prepared.processes)

        result = assemble_result(prepared, outcome, started=started)
        query_span.set(rows=len(result.rows),
                       replay_jobs=len(outcome.job_records))
    return result


def planned_rows(prepared: PreparedQuery,
                 run_id: str | None = None) -> list[QueryRow]:
    """Rows the planner resolved without replay (logged / memo / analysis).

    The service streams these as a query's first batch, before any replay
    job lands.  ``run_id`` restricts to one run; None yields every run.
    """
    rows: list[QueryRow] = []
    for run_plan in prepared.plan.runs:
        if run_id is not None and run_plan.run_id != run_id:
            continue
        for resolution in run_plan.resolutions:
            rows.append(QueryRow(
                run_id=run_plan.run_id, iteration=resolution.iteration,
                name=resolution.name, value=resolution.value,
                source=resolution.source))
    return rows


def replay_rows(prepared: PreparedQuery, run_id: str,
                records: list[LogRecord]) -> list[QueryRow]:
    """Requested cells of ``run_id`` that ``records`` (one or more replay
    jobs' output) satisfies.  The service calls this per finished span to
    stream partial batches; passing a run's full replay output yields the
    same rows :func:`assemble_result` would."""
    index = _replay_index(records)
    rows: list[QueryRow] = []
    for run_plan in prepared.plan.runs:
        if run_plan.run_id != run_id:
            continue
        for name, iteration in run_plan.unresolved_cells:
            if (name, iteration) in index:
                rows.append(QueryRow(run_id=run_id, iteration=iteration,
                                     name=name,
                                     value=index[(name, iteration)],
                                     source="replay"))
    return rows


def assemble_result(prepared: PreparedQuery, outcome: ExecutionOutcome,
                    started: float | None = None) -> QueryResult:
    """Join planner resolutions with replay output into a QueryResult.

    Counts per-source stats, writes replayed values back through each
    run's memo cache (when memoization is on), closes the memo stores,
    and orders rows by each run's wanted iterations × requested names.
    Shared by :func:`query` and the service's request handler.
    """
    names = prepared.names
    rows: list[QueryRow] = []
    stats = QueryStats(runs=len(prepared.entries), values=names,
                       requested_cells=prepared.requested_cells,
                       replay_jobs=outcome.job_records,
                       planner_seconds=prepared.planner_seconds,
                       replay_seconds=outcome.replay_seconds)

    for run_plan in prepared.plan.runs:
        run_id = run_plan.run_id
        resolved: dict[tuple[str, int], QueryRow] = {}
        for row in planned_rows(prepared, run_id):
            resolved[(row.name, row.iteration)] = row
            if row.source == "logged":
                stats.resolved_logged += 1
            elif row.source == "analysis":
                stats.analysis_resolved += 1
            else:
                stats.resolved_memo += 1

        replayed = outcome.records_by_run.get(run_id, [])
        satisfied = replay_rows(prepared, run_id, replayed)
        for row in satisfied:
            resolved[(row.name, row.iteration)] = row
            stats.resolved_replay += 1
        stats.missing_cells += (len(run_plan.unresolved_cells)
                                - len(satisfied))

        if prepared.should_memoize and replayed:
            stats.memo_cells_written += \
                prepared.memos[run_id].write_back(replayed)
        prepared.memos[run_id].store.close()

        for iteration in run_plan.wanted_iterations:
            for name in names:
                row = resolved.get((name, iteration))
                if row is not None:
                    rows.append(row)

    if started is not None:
        stats.total_seconds = monotonic() - started
    return QueryResult(rows=rows, stats=stats)


def prepare_query(values: str | Sequence[str],
                  runs: str | Iterable[str] | None = None,
                  iterations: int | slice | Iterable[int] | None = None,
                  source: str | Path | None = None,
                  workload: str | None = None,
                  config: FlorConfig | None = None,
                  workers: int | None = None,
                  memoize: bool | None = None,
                  catalog: RunCatalog | None = None) -> PreparedQuery:
    """The planning stage of a query, shared by ``query`` and ``explain``.

    Selects runs, gates probe safety, and resolves every requested cell
    to its cheapest source — without executing a single replay job.
    Parameters match :func:`query`.
    """
    started = monotonic()
    config = config or get_config()
    telemetry.enable_from_config(config)
    names = (values,) if isinstance(values, str) else tuple(values)
    if not names:
        raise QueryError("query needs at least one value name")
    should_memoize = config.query_memoize if memoize is None else memoize
    processes = config.query_workers if workers is None else workers

    catalog = catalog or RunCatalog.open(config)
    entries = catalog.select(runs, workload=workload)
    if not entries:
        raise QueryError(
            f"no runs match runs={runs!r} workload={workload!r} under "
            f"{config.home} ({len(catalog)} run(s) cataloged)")

    source_text = _resolve_source_text(source)
    plan = QueryPlan()
    memos: dict[str, MemoCache] = {}
    sources_by_run: dict[str, str] = {}
    probed_by_run: dict[str, tuple[str, ...]] = {}
    aligned_by_run: dict[str, Sequence[int]] = {}
    costs_by_run: dict[str, object] = {}
    instrumented_cache: dict[str, str] = {}

    for entry in entries:
        run_dir = Path(entry.run_dir)
        store = CheckpointStore.for_config(run_dir, config)
        record_source_text = _load_recorded_source(store)
        replay_source_text = (source_text if source_text is not None
                              else record_source_text)
        replay_possible = (
            replay_source_text is not None
            and record_source_text is not None
            and source_digest(replay_source_text)
            != source_digest(record_source_text))

        # Static purity gate, at plan time: MUTATING probes are refused
        # before a single job is scheduled, and PURE_LOGGED probes are
        # evaluated straight from the record log so they cost zero replay.
        probe_analysis: ProbeAnalysis | None = None
        if replay_possible:
            try:
                probe_analysis = assert_probes_safe(
                    record_source_text, replay_source_text,
                    logged_names=set(entry.logged_values),
                    filename=f"{entry.run_id}:probe source")
            except Exception:
                store.close()
                raise

        digest = source_digest(replay_source_text or "")
        memo = MemoCache(store, digest)
        memos[entry.run_id] = memo

        wanted = _normalize_iterations(iterations, entry.main_loop_total)
        pure_probes = probe_analysis.pure_logged() if probe_analysis else {}
        pure_inputs = {read for probe in pure_probes.values()
                       for read in probe.facts.reads} - set(SAFE_BUILTINS)
        record_index = _record_index(
            run_dir, names + tuple(sorted(pure_inputs - set(names))))
        analysis_index = _evaluate_pure_probes(
            pure_probes, names, wanted, record_index)
        costs = load_iteration_costs(store,
                                     scaling_factor=config.scaling_factor)
        run_plan = plan_run(entry, names, wanted,
                            record_index=record_index,
                            memo_index=memo.load(),
                            costs=costs,
                            replay_possible=replay_possible,
                            mode=config.query_planner,
                            analysis_index=analysis_index,
                            analysis_only_names=frozenset(
                                name for name in pure_probes
                                if name in names))
        plan.runs.append(run_plan)
        aligned_by_run[entry.run_id] = entry.aligned_iterations
        costs_by_run[entry.run_id] = costs

        if run_plan.spans:
            if replay_source_text not in instrumented_cache:
                instrumented_cache[replay_source_text] = instrument_source(
                    replay_source_text).instrumented_source
            sources_by_run[entry.run_id] = \
                instrumented_cache[replay_source_text]
            probed_by_run[entry.run_id] = tuple(sorted(
                _probed_blocks(entry, store, record_source_text,
                               replay_source_text)))
        # Job workers open their own connections; release this one so the
        # pool can fork/spawn around a quiesced store.
        store.close()

    return PreparedQuery(config=config, names=names, entries=entries,
                         plan=plan, memos=memos,
                         sources_by_run=sources_by_run,
                         probed_by_run=probed_by_run,
                         aligned_by_run=aligned_by_run,
                         costs_by_run=costs_by_run,
                         planner_seconds=monotonic() - started,
                         processes=processes,
                         should_memoize=should_memoize)


# ------------------------------------------------------------------------- #
# Helpers
# ------------------------------------------------------------------------- #
def _resolve_source_text(source: str | Path | None) -> str | None:
    """Accept probe source as text or as a path (mirrors replay_script)."""
    if source is None:
        return None
    if isinstance(source, Path) or (isinstance(source, str)
                                    and "\n" not in source
                                    and Path(source).exists()):
        return Path(source).read_text(encoding="utf-8")
    return str(source)


def _load_recorded_source(store: CheckpointStore) -> str | None:
    try:
        return store.load_source(ORIGINAL_SOURCE_NAME)
    except Exception:
        return None


def _normalize_iterations(iterations, total: int) -> tuple[int, ...]:
    """Resolve the ``iterations`` argument against one run's range."""
    full = range(max(0, total))
    if iterations is None:
        return tuple(full)
    if isinstance(iterations, int):
        return (iterations,) if iterations in full else ()
    if isinstance(iterations, slice):
        return tuple(full[iterations])
    return tuple(sorted({index for index in iterations if index in full}))


def _record_index(run_dir: Path,
                  names: tuple[str, ...]) -> dict[tuple[str, int], object]:
    """``(name, iteration) -> value`` from record.log (last write wins)."""
    index: dict[tuple[str, int], object] = {}
    for record in read_log(run_dir / "record.log"):
        if record.name in names and record.iteration is not None:
            index[(record.name, record.iteration)] = record.value
    return index


def _evaluate_pure_probes(pure_probes: dict, names: tuple[str, ...],
                          wanted: tuple[int, ...],
                          record_index: dict[tuple[str, int], object],
                          ) -> dict[tuple[str, int], object]:
    """Evaluate ``PURE_LOGGED`` probes per iteration from the record log.

    For each requested value name that a pure probe computes, and each
    wanted iteration at which every input name was logged, the probe's
    expression is evaluated under the safe-builtins environment.  Cells
    whose inputs are missing (or whose evaluation raises) are simply left
    out — the planner reports them missing instead of replaying, because
    the expression references *logged value names*, which need not exist
    as live variables in a replayed script.
    """
    index: dict[tuple[str, int], object] = {}
    for name, probe in pure_probes.items():
        if name not in names:
            continue
        inputs = [read for read in probe.facts.reads
                  if read not in SAFE_BUILTINS]
        for iteration in wanted:
            if (name, iteration) in record_index:
                continue  # already logged at record time; log wins
            env = {}
            for read in inputs:
                if (read, iteration) not in record_index:
                    env = None
                    break
                env[read] = record_index[(read, iteration)]
            if env is None:
                continue
            try:
                index[(name, iteration)] = evaluate_pure_logged(probe, env)
            except Exception:
                continue  # unresolvable cell, reported missing
    return index


def _replay_index(records: list[LogRecord]) -> dict[tuple[str, int], object]:
    index: dict[tuple[str, int], object] = {}
    for record in records:
        if record.iteration is not None:
            index[(record.name, record.iteration)] = record.value
    return index


def _probed_blocks(entry: RunEntry, store: CheckpointStore,
                   record_source_text: str | None,
                   replay_source_text: str | None) -> set[str]:
    if not record_source_text or not replay_source_text:
        return set()
    stored = {block_id: BlockSpec.from_dict(spec)
              for block_id, spec in
              (store.get_metadata("blocks") or {}).items()}
    return detect_probed_blocks(record_source_text, replay_source_text,
                                stored)
