"""Cost-based value resolution for hindsight queries.

Given the cells a query asks for — ``(run, value-name, iteration)`` — the
planner resolves each one to the cheapest source:

``logged``
    The value was logged at record time; reading ``record.log`` is free.
``memo``
    A previous query already replayed it and the memo cache wrote it back
    through the storage backend; reading it back is free.
``analysis``
    The probe that computes the value is ``PURE_LOGGED`` (it reads only
    names the run already logged — see :mod:`repro.analysis.purity`), so
    the value was evaluated directly from ``record.log`` without starting
    a single replay worker.
``replay``
    The value must be recomputed.  Unresolved iterations are coalesced
    into **replay spans**: contiguous iteration ranges that start right
    after an aligned checkpoint (exactly restorable, by construction) and
    run forward, so one span resolves every probed value it passes over —
    multiple probes per pass.

Span construction is where the cost model earns its keep.  For each gap of
unresolved iterations the planner chooses between *bridging* (extending the
previous span forward through iterations nobody asked for) and *starting
fresh* (restoring the nearest aligned checkpoint and recomputing the gap
from there), priced with the per-iteration timing statistics the record
phase persisted (``iteration_stats``, via the replay scheduler's
:class:`~repro.replay.scheduler.IterationCosts`).  Dense queries therefore
collapse into few long spans; sparse queries into many short restore+probe
hops — whichever is estimated cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..replay.scheduler import IterationCosts, nearest_aligned_at_or_before
from .catalog import RunEntry

__all__ = ["Resolution", "ReplaySpan", "RunPlan", "QueryPlan",
           "plan_spans", "split_span", "balance_spans", "plan_run"]

#: Sources a cell can resolve to, cheapest first.
SOURCES = ("logged", "memo", "analysis", "replay")


@dataclass(frozen=True)
class Resolution:
    """One query cell resolved to a source (value present unless replay)."""

    run_id: str
    name: str
    iteration: int
    source: str
    value: object = None


@dataclass(frozen=True)
class ReplaySpan:
    """One contiguous replay range ``[start, stop)`` of one run.

    ``restore_index`` is the aligned checkpoint restored before the span
    (``start - 1``), or None when the span starts at iteration 0 and
    recomputes from scratch.  Every iteration in the span executes in
    replay-exec phase, so every probed value along the way is produced —
    including ones the query did not ask for, which the memo cache banks
    for future queries.
    """

    start: int
    stop: int
    restore_index: int | None
    estimated_seconds: float

    def iterations(self) -> range:
        return range(self.start, self.stop)

    def __len__(self) -> int:
        return max(0, self.stop - self.start)


def plan_spans(wanted: Iterable[int], aligned: Sequence[int],
               costs: IterationCosts) -> list[ReplaySpan]:
    """Coalesce unresolved iterations into cost-minimal replay spans.

    Greedy left-to-right over the contiguous groups of ``wanted``: each
    group either extends the previous span (bridging the gap with recompute
    of un-requested iterations) or starts a fresh span at the nearest
    aligned checkpoint — whichever the cost model prices lower.  A fresh
    span whose restore point lies before the previous span's end would
    overlap it; bridging is always cheaper there, so spans never overlap.
    """
    indices = sorted(set(wanted))
    if not indices:
        return []
    restore_seconds = max(costs.restore_seconds, 0.0)

    groups: list[tuple[int, int]] = []
    for index in indices:
        if groups and index == groups[-1][1]:
            groups[-1] = (groups[-1][0], index + 1)
        else:
            groups.append((index, index + 1))

    spans: list[tuple[int, int]] = []
    for begin, end in groups:
        restore = nearest_aligned_at_or_before(aligned, begin - 1)
        fresh_start = restore + 1 if restore is not None else 0
        fresh_cost = ((restore_seconds if restore is not None else 0.0)
                      + costs.span_compute_seconds(fresh_start, end))
        if spans:
            bridge_cost = costs.span_compute_seconds(spans[-1][1], end)
            if bridge_cost <= fresh_cost:
                spans[-1] = (spans[-1][0], end)
                continue
        spans.append((fresh_start, end))
    return [_make_span(start, stop, costs) for start, stop in spans]


def _make_span(start: int, stop: int, costs: IterationCosts) -> ReplaySpan:
    restore_index = start - 1 if start > 0 else None
    estimated = costs.span_compute_seconds(start, stop)
    if restore_index is not None:
        estimated += max(costs.restore_seconds, 0.0)
    return ReplaySpan(start=start, stop=stop, restore_index=restore_index,
                      estimated_seconds=estimated)


def split_span(span: ReplaySpan, aligned: Sequence[int],
               costs: IterationCosts, parts: int = 2) -> list[ReplaySpan]:
    """Split one span at aligned boundaries into ~cost-equal parts.

    Used to widen parallelism when a query yields fewer spans than worker
    processes.  Cuts land only on aligned starts (``checkpoint + 1``), so
    every part restores exactly; a span crossing no aligned checkpoint is
    unsplittable and comes back unchanged.
    """
    if parts <= 1:
        return [span]
    cut_points = [index + 1 for index in aligned
                  if span.start < index + 1 < span.stop]
    if not cut_points:
        return [span]
    target = span.estimated_seconds / parts
    pieces: list[ReplaySpan] = []
    begin = span.start
    for cut in cut_points:
        if len(pieces) == parts - 1:
            break
        if costs.span_compute_seconds(begin, cut) >= target:
            pieces.append(_make_span(begin, cut, costs))
            begin = cut
    pieces.append(_make_span(begin, span.stop, costs))
    return pieces if len(pieces) > 1 else [span]


def balance_spans(spans_by_run: list[tuple[str, ReplaySpan]],
                  aligned_by_run: dict[str, Sequence[int]],
                  costs_by_run: dict[str, IterationCosts],
                  target_jobs: int) -> list[tuple[str, ReplaySpan]]:
    """Split the most expensive spans until ``target_jobs`` jobs exist.

    Jobs from different runs already parallelize; this widens within-run
    parallelism when a few heavy spans would otherwise leave pool workers
    idle.  Splitting stops when every remaining span crosses no aligned
    checkpoint (nothing to cut at) or the target is met.
    """
    jobs = list(spans_by_run)
    frozen: set[int] = set()  # positions known unsplittable
    while len(jobs) < target_jobs:
        candidates = [(span.estimated_seconds, position)
                      for position, (_run, span) in enumerate(jobs)
                      if position not in frozen]
        if not candidates:
            break
        _cost, position = max(candidates)
        run_id, span = jobs[position]
        pieces = split_span(span, aligned_by_run[run_id],
                            costs_by_run[run_id], parts=2)
        if len(pieces) == 1:
            frozen.add(position)
            continue
        jobs[position:position + 1] = [(run_id, piece) for piece in pieces]
        frozen = set()  # positions shifted; re-evaluate from scratch
    return jobs


@dataclass
class RunPlan:
    """The per-run half of a query plan."""

    entry: RunEntry
    names: tuple[str, ...]
    wanted_iterations: tuple[int, ...]
    resolutions: list[Resolution] = field(default_factory=list)
    #: Cells neither logged nor memoized, awaiting replay output.
    unresolved_cells: list[tuple[str, int]] = field(default_factory=list)
    replay_iterations: tuple[int, ...] = ()
    spans: list[ReplaySpan] = field(default_factory=list)
    #: Names produced solely by PURE_LOGGED probes: replay cannot log
    #: them, so their unresolved cells are missing even inside a span.
    analysis_only_names: frozenset[str] = frozenset()

    @property
    def run_id(self) -> str:
        return self.entry.run_id

    @property
    def estimated_replay_seconds(self) -> float:
        return sum(span.estimated_seconds for span in self.spans)

    def count(self, source: str) -> int:
        return sum(1 for r in self.resolutions if r.source == source)


@dataclass
class QueryPlan:
    """The full plan of one multi-run hindsight query."""

    runs: list[RunPlan] = field(default_factory=list)

    @property
    def span_jobs(self) -> list[tuple[str, ReplaySpan]]:
        return [(plan.run_id, span) for plan in self.runs
                for span in plan.spans]

    @property
    def estimated_replay_seconds(self) -> float:
        return sum(plan.estimated_replay_seconds for plan in self.runs)

    def count(self, source: str) -> int:
        return sum(plan.count(source) for plan in self.runs)


def plan_run(entry: RunEntry, names: Sequence[str],
             wanted_iterations: Sequence[int],
             record_index: dict[tuple[str, int], object],
             memo_index: dict[str, dict[int, object]],
             costs: IterationCosts,
             replay_possible: bool,
             mode: str = "cost",
             analysis_index: dict[tuple[str, int], object] | None = None,
             analysis_only_names: frozenset[str] = frozenset()) -> RunPlan:
    """Resolve one run's cells and coalesce the remainder into spans.

    ``record_index`` maps ``(name, iteration)`` to the record-time value;
    ``memo_index`` is the memo cache's loaded view for the query's probe
    source.  ``replay_possible`` is False when the query supplied no probe
    source — replaying the recorded script verbatim cannot produce values
    it never logged, so unresolved cells stay unresolved instead of
    scheduling useless jobs.  ``mode="replay_all"`` (the ablation baseline)
    skips span coalescing and replays the whole recorded range.

    ``analysis_index`` holds values the purity analysis already evaluated
    from the record log (``PURE_LOGGED`` probes); cells found there cost no
    replay.  ``analysis_only_names`` are value names produced *solely* by
    ``PURE_LOGGED`` probe statements: their expressions reference logged
    value names, which need not exist as live script variables, so a cell
    of such a name that the analysis could not evaluate is reported missing
    rather than span-planned — replaying it could only crash.
    """
    plan = RunPlan(entry=entry, names=tuple(names),
                   wanted_iterations=tuple(wanted_iterations),
                   analysis_only_names=analysis_only_names)
    analysis_index = analysis_index or {}
    unresolved: set[int] = set()
    for iteration in wanted_iterations:
        for name in names:
            if (name, iteration) in record_index:
                plan.resolutions.append(Resolution(
                    entry.run_id, name, iteration, "logged",
                    record_index[(name, iteration)]))
            elif iteration in memo_index.get(name, {}):
                plan.resolutions.append(Resolution(
                    entry.run_id, name, iteration, "memo",
                    memo_index[name][iteration]))
            elif (name, iteration) in analysis_index:
                plan.resolutions.append(Resolution(
                    entry.run_id, name, iteration, "analysis",
                    analysis_index[(name, iteration)]))
            else:
                plan.unresolved_cells.append((name, iteration))
                if name not in analysis_only_names:
                    unresolved.add(iteration)
    if unresolved and replay_possible:
        plan.replay_iterations = tuple(sorted(unresolved))
        if mode == "replay_all":
            full = range(entry.main_loop_total)
            plan.spans = [_make_span(0, entry.main_loop_total, costs)] \
                if entry.main_loop_total > 0 else []
            plan.replay_iterations = tuple(full)
        else:
            plan.spans = plan_spans(unresolved, entry.aligned_iterations,
                                    costs)
    return plan
