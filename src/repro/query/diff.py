"""Cross-run drift diff: where did two runs start to disagree?

``repro.diff(run_a, run_b, values)`` answers the hindsight-debugging
question one level above a value fetch: not "what was the loss at epoch
40" but "at which iteration did these two runs' losses *first* diverge".
Materializing every iteration of both runs and comparing would cost O(n)
replay; this module locates the first diverging iteration per value with
O(log n) work instead, layered entirely on the existing machinery:

* **logged scan** — a value both runs logged at record time resolves by
  scanning the two record logs; zero replay jobs.
* **digest pre-narrowing** — checkpoint payloads are content-addressed
  and their compression is deterministic, so *equal digests mean equal
  state*: comparing the two runs' manifest digests at common aligned
  iterations brackets the first **state** divergence with free metadata
  reads, no payload I/O, no replay.
* **adaptive bisection** — within the bracket (or over the whole common
  range when digests can't help) the first **value** divergence is found
  by bisection, each probe a single-iteration :func:`repro.query.query`
  against both runs — at most two span-replay jobs per probe, fewer when
  memoized, planned and executed by the existing planner/executor and
  written back to the memo cache so repeated diffs get cheaper.

Bisection assumes drift is *persistent*: once the trajectories diverge
on a value, they stay diverged (true of the training-drift failures the
paper debugs — a bad seed, a data skew, a changed hyperparameter).  A
value that oscillates back into agreement may bisect to a later
divergent iteration; the report's ``method`` column says how each answer
was obtained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .. import telemetry
from ..config import FlorConfig, get_config
from ..exceptions import QueryError
from ..record.logger import read_log
from ..storage.checkpoint_store import CheckpointStore
from ..utils.timing import monotonic
from .api import query
from .catalog import RunCatalog, RunEntry
from .dataframe import ReplayJobRecord

__all__ = ["ValueDrift", "DiffStats", "DiffResult", "diff"]


@dataclass(frozen=True)
class ValueDrift:
    """Drift verdict for one value name across the two runs."""

    name: str
    #: ``"diverged"`` | ``"equal"`` | ``"no_overlap"`` | ``"unresolved"``.
    status: str
    #: First common iteration where the value differs (None unless diverged).
    first_divergence: int | None = None
    #: Last common iteration where the value still agreed.
    last_equal: int | None = None
    #: The two values at ``first_divergence``.
    value_a: object = None
    value_b: object = None
    #: The shared value at ``last_equal``.
    baseline_a: object = None
    baseline_b: object = None
    #: How the answer was found: ``"logged-scan"``, ``"digest+bisect"``
    #: or ``"bisect"``.
    method: str = ""
    #: Single-iteration value probes this value's search issued.
    probes: int = 0


@dataclass
class DiffStats:
    """Accounting of one drift diff (the testable job-budget ledger)."""

    run_a: str = ""
    run_b: str = ""
    #: Iterations recorded by both runs (the diffable domain).
    common_iterations: int = 0
    #: First common aligned iteration whose checkpoint digests differ
    #: (state divergence), found by free manifest comparison; None when
    #: digests never diverge or were not comparable.
    state_divergence: int | None = None
    #: Last common aligned iteration whose checkpoint digests match.
    last_state_match: int | None = None
    #: Aligned iterations whose digests were compared (all free).
    digest_comparisons: int = 0
    #: Single-iteration probe queries issued across all values.
    probe_queries: int = 0
    #: Every replay job those probes scheduled — the ledger the O(log n)
    #: bound is asserted against.
    replay_jobs: list[ReplayJobRecord] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def replay_job_count(self) -> int:
        return len(self.replay_jobs)

    def summary(self) -> str:
        state = ("state diverged @%s" % self.state_divergence
                 if self.state_divergence is not None else "state agreed")
        return (f"diff({self.run_a} vs {self.run_b}): "
                f"{self.common_iterations} common iterations, {state} "
                f"({self.digest_comparisons} digest comparisons), "
                f"{self.probe_queries} probes / "
                f"{self.replay_job_count} replay job(s); "
                f"{self.total_seconds:.3f}s")

    def to_payload(self) -> dict:
        """Plain-dict form (JSON-ready, telemetry-document friendly)."""
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "common_iterations": self.common_iterations,
            "state_divergence": self.state_divergence,
            "last_state_match": self.last_state_match,
            "digest_comparisons": self.digest_comparisons,
            "probe_queries": self.probe_queries,
            "total_seconds": self.total_seconds,
            "replay_jobs": [job.to_dict() for job in self.replay_jobs],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DiffStats":
        """Inverse of :meth:`to_payload`."""
        state = payload.get("state_divergence")
        last_match = payload.get("last_state_match")
        return cls(
            run_a=payload.get("run_a", ""),
            run_b=payload.get("run_b", ""),
            common_iterations=int(payload.get("common_iterations", 0)),
            state_divergence=int(state) if state is not None else None,
            last_state_match=(int(last_match)
                              if last_match is not None else None),
            digest_comparisons=int(payload.get("digest_comparisons", 0)),
            probe_queries=int(payload.get("probe_queries", 0)),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            replay_jobs=[ReplayJobRecord.from_dict(row)
                         for row in payload.get("replay_jobs", [])])


class DiffResult:
    """Columnar drift report: one row per value, plus the accounting."""

    #: Column order of :meth:`to_records` / :meth:`to_columns`.
    COLUMNS = ("name", "status", "first_divergence", "last_equal",
               "value_a", "value_b", "baseline_a", "baseline_b",
               "method", "probes")

    def __init__(self, drifts: list[ValueDrift], stats: DiffStats):
        self.drifts = drifts
        self.stats = stats

    def drift(self, name: str) -> ValueDrift:
        for entry in self.drifts:
            if entry.name == name:
                return entry
        raise QueryError(f"value {name!r} was not part of this diff; "
                         f"diffed: {', '.join(d.name for d in self.drifts)}")

    def first_divergence(self, name: str) -> int | None:
        return self.drift(name).first_divergence

    @property
    def diverged(self) -> bool:
        return any(entry.status == "diverged" for entry in self.drifts)

    def to_records(self) -> list[dict]:
        """Row-oriented report (pandas ``DataFrame(result.to_records())``)."""
        return [{column: getattr(entry, column) for column in self.COLUMNS}
                for entry in self.drifts]

    def to_columns(self) -> dict[str, list]:
        """Column-oriented report: ``{column: [per-value cells]}``."""
        return {column: [getattr(entry, column) for entry in self.drifts]
                for column in self.COLUMNS}

    def __len__(self) -> int:
        return len(self.drifts)

    def __iter__(self):
        return iter(self.drifts)

    def __repr__(self) -> str:
        return f"DiffResult({self.stats.summary()})"


# ------------------------------------------------------------------------- #
# Value comparison
# ------------------------------------------------------------------------- #
def _values_equal(left, right, tolerance: float) -> bool:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
            and not isinstance(left, bool) and not isinstance(right, bool):
        if math.isnan(left) or math.isnan(right):
            # A NaN loss *is* the classic drift being diagnosed: NaN on
            # one side is a divergence, NaN on both sides is agreement.
            return math.isnan(left) and math.isnan(right)
        return abs(left - right) <= tolerance
    return left == right


# ------------------------------------------------------------------------- #
# Digest pre-narrowing (free: manifest metadata only)
# ------------------------------------------------------------------------- #
def _digest_signatures(entry: RunEntry, config: FlorConfig
                       ) -> dict[int, tuple]:
    """``{aligned iteration: sorted (block, digest) tuple}`` for one run.

    Only loop-block rows at aligned iterations participate, and only when
    every one of them carries a content address — the payload digest for
    whole dedup-recorded rows, or the raw-payload digest for chunked
    (delta) rows, which is codec-independent by construction.  An
    iteration missing any digest yields no signature and is skipped by
    the comparison rather than treated as equal or different.
    """
    loop_blocks = set(entry.loop_blocks)
    aligned = set(entry.aligned_iterations)
    store = CheckpointStore.for_config(Path(entry.run_dir), config)
    try:
        rows: dict[int, dict[str, str]] = {}
        for record in store.records():
            if record.block_id in loop_blocks \
                    and record.execution_index in aligned:
                if record.is_chunked():
                    digest = f"raw:{record.digest}"
                else:
                    digest = record.payload_digest or ""
                rows.setdefault(record.execution_index, {})[
                    record.block_id] = digest
    finally:
        store.close()
    signatures: dict[int, tuple] = {}
    for iteration, blocks in rows.items():
        if blocks and all(blocks.values()) \
                and set(blocks) == loop_blocks:
            signatures[iteration] = tuple(sorted(blocks.items()))
    return signatures


def _narrow_by_digests(entry_a: RunEntry, entry_b: RunEntry,
                       config: FlorConfig, stats: DiffStats) -> None:
    """Bracket the first *state* divergence by comparing checkpoint digests.

    Fills ``stats.last_state_match`` / ``stats.state_divergence``.  Equal
    digests at iteration ``i`` mean both runs reached identical state
    after ``i`` — deterministic serialization plus deterministic
    compression make the digest a content address — so no value can have
    diverged at or before ``i``.

    Only sound when the two runs checkpoint the *same* loop blocks: with
    different block structures (structurally edited scripts) the digests
    describe different slices of state, so narrowing is skipped and the
    search falls back to pure bisection.
    """
    if not entry_a.loop_blocks or \
            set(entry_a.loop_blocks) != set(entry_b.loop_blocks):
        return
    sig_a = _digest_signatures(entry_a, config)
    sig_b = _digest_signatures(entry_b, config)
    common = sorted(set(sig_a) & set(sig_b))
    for iteration in common:
        stats.digest_comparisons += 1
        if sig_a[iteration] == sig_b[iteration]:
            stats.last_state_match = iteration
        else:
            stats.state_divergence = iteration
            break


# ------------------------------------------------------------------------- #
# Probing (each probe: one single-iteration query against both runs)
# ------------------------------------------------------------------------- #
class _ValueProber:
    """Fetches one value at one iteration from both runs, with caching.

    Every probe funnels through :func:`repro.query.query` so resolution
    is cost-based (logged read, memo read, or a minimal span-replay job
    per run) and replayed values are memoized for later probes and later
    diffs.  The probe cache plus memo write-back keep repeat visits to an
    iteration free; the replay-job ledger accumulates into ``stats``.
    """

    def __init__(self, name: str, run_a: str, run_b: str,
                 source, config: FlorConfig, workers: int | None,
                 memoize: bool | None, catalog: RunCatalog,
                 stats: DiffStats):
        self.name = name
        self.run_a = run_a
        self.run_b = run_b
        self.source = source
        self.config = config
        self.workers = workers
        self.memoize = memoize
        self.catalog = catalog
        self.stats = stats
        self.probes = 0
        self._cache: dict[int, tuple] = {}

    def at(self, iteration: int) -> tuple:
        """``(value_a, value_b)`` at ``iteration`` (None for unresolvable)."""
        if iteration in self._cache:
            return self._cache[iteration]
        with telemetry.get_tracer().span("diff.probe", value=self.name,
                                         iteration=iteration) as probe:
            result = query(values=self.name,
                           runs=[self.run_a, self.run_b],
                           iterations=iteration, source=self.source,
                           config=self.config, workers=self.workers,
                           memoize=self.memoize, catalog=self.catalog)
            probe.set(replay_jobs=len(result.stats.replay_jobs))
        self.probes += 1
        self.stats.probe_queries += 1
        self.stats.replay_jobs.extend(result.stats.replay_jobs)
        pivot = result.pivot(self.name)
        pair = (pivot.get(self.run_a, {}).get(iteration),
                pivot.get(self.run_b, {}).get(iteration))
        self._cache[iteration] = pair
        return pair


def _record_values(run_dir: str, name: str) -> dict[int, object]:
    """``{iteration: value}`` of one value from a run's record log."""
    values: dict[int, object] = {}
    for record in read_log(Path(run_dir) / "record.log"):
        if record.name == name and record.iteration is not None:
            values[record.iteration] = record.value
    return values


# ------------------------------------------------------------------------- #
# Per-value drift search
# ------------------------------------------------------------------------- #
def _logged_scan(name: str, entry_a: RunEntry, entry_b: RunEntry,
                 tolerance: float) -> ValueDrift:
    """Linear scan of the two record logs — free, no replay."""
    values_a = _record_values(entry_a.run_dir, name)
    values_b = _record_values(entry_b.run_dir, name)
    common = sorted(set(values_a) & set(values_b))
    if not common:
        return ValueDrift(name=name, status="no_overlap",
                          method="logged-scan")
    last_equal: int | None = None
    for iteration in common:
        if _values_equal(values_a[iteration], values_b[iteration],
                         tolerance):
            last_equal = iteration
            continue
        return ValueDrift(
            name=name, status="diverged", first_divergence=iteration,
            last_equal=last_equal,
            value_a=values_a[iteration], value_b=values_b[iteration],
            baseline_a=(values_a[last_equal]
                        if last_equal is not None else None),
            baseline_b=(values_b[last_equal]
                        if last_equal is not None else None),
            method="logged-scan")
    return ValueDrift(name=name, status="equal", last_equal=last_equal,
                      baseline_a=values_a[last_equal],
                      baseline_b=values_b[last_equal],
                      method="logged-scan")


def _bisect_drift(name: str, domain: Sequence[int], prober: _ValueProber,
                  tolerance: float, stats: DiffStats) -> ValueDrift:
    """Find the first diverging iteration of ``name`` by probe bisection.

    ``domain`` is the ascending list of candidate iterations.  The state
    bracket from digest pre-narrowing seeds the search: positions at or
    before the last state match are provably equal (skipped without
    probing), and the first state-divergent iteration is probed *first* —
    when the value diverges with the state (the common case for planted
    drift) that single probe collapses the bracket to the digest gap and
    the whole search costs O(1) probes instead of O(log n).
    """
    method = ("digest+bisect"
              if (stats.last_state_match is not None
                  or stats.state_divergence is not None) else "bisect")
    # Positions into ``domain``; the invariant over the whole search is
    # values-equal at ``lo`` (lo == -1 is the virtual "before anything"
    # position) and values-diverged at ``hi``.
    lo = -1
    hi = len(domain) - 1
    if stats.last_state_match is not None:
        # bisect_right by value: last domain position <= last_state_match.
        for position, iteration in enumerate(domain):
            if iteration <= stats.last_state_match:
                lo = position
            else:
                break

    def differ_at(position: int) -> bool | None:
        value_a, value_b = prober.at(domain[position])
        if value_a is None or value_b is None:
            return None
        return not _values_equal(value_a, value_b, tolerance)

    # Seed probe at the state divergence: if the value already differs
    # there, the bracket collapses to the digest gap immediately.
    if stats.state_divergence is not None:
        seed = None
        for position in range(lo + 1, hi + 1):
            if domain[position] >= stats.state_divergence:
                seed = position
                break
        if seed is not None and seed < hi:
            verdict = differ_at(seed)
            if verdict is None:
                return ValueDrift(name=name, status="unresolved",
                                  method=method, probes=prober.probes)
            if verdict:
                hi = seed
            else:
                lo = seed

    # Establish the diverged end of the bracket (unless the seed already
    # did).  An equal final iteration means this value never (observably)
    # diverged, whatever the state did.
    verdict = differ_at(hi)
    if verdict is None:
        return ValueDrift(name=name, status="unresolved", method=method,
                          probes=prober.probes)
    if not verdict:
        iteration = domain[hi]
        value_a, value_b = prober.at(iteration)
        return ValueDrift(name=name, status="equal", last_equal=iteration,
                          baseline_a=value_a, baseline_b=value_b,
                          method=method, probes=prober.probes)

    while hi - lo > 1:
        mid = (lo + hi) // 2
        verdict = differ_at(mid)
        if verdict is None:
            return ValueDrift(name=name, status="unresolved", method=method,
                              probes=prober.probes)
        if verdict:
            hi = mid
        else:
            lo = mid

    first = domain[hi]
    value_a, value_b = prober.at(first)
    baseline_a = baseline_b = None
    last_equal = domain[lo] if lo >= 0 else None
    if lo >= 0:
        baseline_a, baseline_b = prober.at(domain[lo])
        if baseline_a is None or baseline_b is None:
            baseline_a = baseline_b = None
    return ValueDrift(name=name, status="diverged", first_divergence=first,
                      last_equal=last_equal, value_a=value_a,
                      value_b=value_b, baseline_a=baseline_a,
                      baseline_b=baseline_b, method=method,
                      probes=prober.probes)


# ------------------------------------------------------------------------- #
# Entry point
# ------------------------------------------------------------------------- #
def diff(run_a: str, run_b: str, values: str | Sequence[str],
         source: str | Path | None = None,
         tolerance: float = 0.0,
         use_checkpoint_digests: bool = True,
         config: FlorConfig | None = None,
         workers: int | None = None,
         memoize: bool | None = None,
         catalog: RunCatalog | None = None) -> DiffResult:
    """Locate the first diverging iteration of each value between two runs.

    Parameters
    ----------
    run_a, run_b:
        Run ids (or unique prefixes) of the two runs to compare.
    values:
        Value name or names to diff.
    source:
        Probe source (script text or path) computing values neither run
        logged at record time; required for such values, ignored for
        logged ones.
    tolerance:
        Numeric values within ``tolerance`` of each other count as equal
        (exact comparison by default).
    use_checkpoint_digests:
        Bracket the state divergence by comparing manifest checkpoint
        digests first (free).  Disable to exercise or measure pure value
        bisection.
    workers, memoize, catalog:
        Forwarded to the underlying :func:`repro.query.query` probes.
    """
    started = monotonic()
    config = config or get_config()
    telemetry.enable_from_config(config)
    names = (values,) if isinstance(values, str) else tuple(values)
    if not names:
        raise QueryError("diff needs at least one value name")

    with telemetry.get_tracer().span("diff",
                                     values=",".join(names)) as diff_span:
        catalog = catalog or RunCatalog.open(config)
        entry_a = _single_entry(catalog, run_a)
        entry_b = _single_entry(catalog, run_b)
        if entry_a.run_id == entry_b.run_id:
            raise QueryError(
                f"diff needs two distinct runs, got {entry_a.run_id!r} "
                "twice")
        diff_span.set(run_a=entry_a.run_id, run_b=entry_b.run_id)

        stats = DiffStats(run_a=entry_a.run_id, run_b=entry_b.run_id)
        domain = sorted(set(range(entry_a.main_loop_total))
                        & set(range(entry_b.main_loop_total)))
        stats.common_iterations = len(domain)

        if domain and use_checkpoint_digests:
            _narrow_by_digests(entry_a, entry_b, config, stats)

        drifts: list[ValueDrift] = []
        for name in names:
            if not domain:
                drifts.append(ValueDrift(name=name, status="no_overlap",
                                         method="logged-scan"))
                continue
            logged_both = (name in entry_a.logged_values
                           and name in entry_b.logged_values)
            if logged_both:
                drifts.append(_logged_scan(name, entry_a, entry_b,
                                           tolerance))
                continue
            if source is None:
                raise QueryError(
                    f"value {name!r} was not logged by both runs "
                    f"({entry_a.run_id}: {name in entry_a.logged_values}, "
                    f"{entry_b.run_id}: {name in entry_b.logged_values}); "
                    "pass `source=` with a probe script that computes it")
            prober = _ValueProber(name, entry_a.run_id, entry_b.run_id,
                                  source, config, workers, memoize,
                                  catalog, stats)
            drifts.append(_bisect_drift(name, domain, prober, tolerance,
                                        stats))
        diff_span.set(probes=stats.probe_queries)

    stats.total_seconds = monotonic() - started
    return DiffResult(drifts=drifts, stats=stats)


def _single_entry(catalog: RunCatalog, run_id: str) -> RunEntry:
    matches = catalog.select(run_id)
    if not matches:
        raise QueryError(
            f"run {run_id!r} not in catalog; cataloged runs: "
            f"{', '.join(sorted(entry.run_id for entry in catalog)) or '-'}")
    if len(matches) > 1:
        raise QueryError(
            f"run id prefix {run_id!r} is ambiguous: "
            f"{', '.join(entry.run_id for entry in matches)}")
    return matches[0]
