"""Batched replay-job execution for the hindsight query engine.

The planner hands over span jobs — ``(run_id, ReplaySpan)`` pairs,
possibly spanning many runs — and this module turns them into
:class:`~repro.replay.parallel.ReplayJobSpec` sampling replays executed on
one process pool (``FlorConfig.query_workers``), so a multi-run query is
parallel *across* runs and across disjoint spans of the same run, not just
within one run's replay.  Each job restores its own aligned checkpoint and
replays forward; jobs share nothing but the read-only checkpoint stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import FlorConfig
from ..exceptions import QueryError
from ..record.logger import LogRecord, iteration_order_key
from ..replay.parallel import ReplayJobSpec, run_replay_jobs
from ..utils.timing import monotonic
from .dataframe import ReplayJobRecord
from .planner import ReplaySpan

__all__ = ["ExecutionOutcome", "build_span_specs", "execute_span_jobs",
           "outcome_from_results"]


@dataclass
class ExecutionOutcome:
    """What a batch of replay jobs produced."""

    #: Replayed log records per run, in iteration order.
    records_by_run: dict[str, list[LogRecord]] = field(default_factory=dict)
    #: One ledger row per job, with measured wall seconds.
    job_records: list[ReplayJobRecord] = field(default_factory=list)
    replay_seconds: float = 0.0


def execute_span_jobs(jobs: list[tuple[str, ReplaySpan]],
                      sources_by_run: dict[str, str],
                      probed_by_run: dict[str, tuple[str, ...]],
                      config: FlorConfig,
                      processes: int | None = None) -> ExecutionOutcome:
    """Run every span job and collect replayed records per run.

    ``sources_by_run`` maps run ids to the *instrumented* probe source;
    ``probed_by_run`` to the per-run probed block ids (probe detection
    diffs against each run's own recorded source, so they can differ
    across runs in one query).  A failed job raises :class:`QueryError`
    carrying the worker traceback.
    """
    if not jobs:
        return ExecutionOutcome()
    specs = build_span_specs(jobs, sources_by_run, probed_by_run)
    start = monotonic()
    results = run_replay_jobs(specs, config,
                              processes=(processes
                                         if processes is not None
                                         else config.query_workers))
    return outcome_from_results(jobs, specs, results,
                                replay_seconds=monotonic() - start)


def build_span_specs(jobs: list[tuple[str, ReplaySpan]],
                     sources_by_run: dict[str, str],
                     probed_by_run: dict[str, tuple[str, ...]],
                     ) -> list[ReplayJobSpec]:
    """Turn balanced span jobs into pool-ready :class:`ReplayJobSpec` rows.

    The service's fair scheduler submits these specs one at a time to its
    shared worker pool; the in-library path hands the whole list to
    :func:`~repro.replay.parallel.run_replay_jobs`.  ``pid``/``num_workers``
    only keep concurrent jobs of one run from sharing a replay-log
    filename; sampling replay does not partition by them.
    """
    per_run_total: dict[str, int] = {}
    for run_id, _span in jobs:
        per_run_total[run_id] = per_run_total.get(run_id, 0) + 1
    per_run_next: dict[str, int] = {}
    specs: list[ReplayJobSpec] = []
    for run_id, span in jobs:
        pid = per_run_next.get(run_id, 0)
        per_run_next[run_id] = pid + 1
        specs.append(ReplayJobSpec(
            run_id=run_id,
            instrumented_source=sources_by_run[run_id],
            probed_blocks=tuple(probed_by_run.get(run_id, ())),
            sample_iterations=tuple(span.iterations()),
            pid=pid,
            num_workers=per_run_total[run_id],
        ))
    return specs


def outcome_from_results(jobs: list[tuple[str, ReplaySpan]],
                         specs: list[ReplayJobSpec],
                         results: list,
                         replay_seconds: float = 0.0) -> ExecutionOutcome:
    """Collect per-job worker results into one :class:`ExecutionOutcome`.

    ``results`` aligns with ``jobs``/``specs``.  A failed job raises
    :class:`QueryError` carrying every failing worker traceback.
    """
    outcome = ExecutionOutcome(replay_seconds=replay_seconds)
    failures = [(spec, result) for spec, result in zip(specs, results)
                if not result.succeeded]
    if failures:
        details = "\n".join(
            f"run {spec.run_id} span [{spec.sample_iterations[0]}, "
            f"{spec.sample_iterations[-1] + 1}):\n{result.error}"
            for spec, result in failures)
        raise QueryError(
            f"{len(failures)} hindsight replay job(s) failed:\n{details}")

    for (run_id, span), result in zip(jobs, results):
        outcome.records_by_run.setdefault(run_id, []).extend(
            result.log_records)
        outcome.job_records.append(ReplayJobRecord(
            run_id=run_id,
            start=span.start,
            stop=span.stop,
            restore_index=span.restore_index,
            estimated_seconds=span.estimated_seconds,
            wall_seconds=result.wall_seconds,
        ))
    for records in outcome.records_by_run.values():
        records.sort(key=iteration_order_key)
    return outcome
