"""The multi-run catalog: an index of every recorded execution.

A hindsight query starts from "which runs?"; the catalog answers it without
the user tracking run ids by hand.  Opening the catalog scans the Flor home
for run directories (any storage backend — the store's layout sniffing does
the detection) and builds one :class:`RunEntry` per run: workload, loop
shape, checkpoint density, logged value names, timing.  Entries are
persisted *into each run's own store* through the existing
``StorageBackend`` metadata APIs, so reopening the catalog is metadata
reads, not manifest scans; an entry is rebuilt automatically when its
fingerprint (schema version + checkpoint count) no longer matches the
store — the LSST lesson of keeping the catalog derivable from the data it
indexes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator

from ..config import FlorConfig, get_config
from ..record.logger import read_log
from ..replay.scheduler import aligned_checkpoints
from ..storage.backends import SHARD_MANIFEST_NAME
from ..storage.checkpoint_store import CheckpointStore
from ..storage.lifecycle import (DEFAULT_GC_GRACE_SECONDS, PruneReport,
                                 collect_garbage, retire_run)
from ..utils.naming import split_worker_run_id
from .memo import source_digest

__all__ = ["CATALOG_METADATA_KEY", "CATALOG_SCHEMA_VERSION", "RunEntry",
           "JobGroup", "RunCatalog", "looks_like_run_dir"]

#: Store-metadata key under which a run's catalog entry is persisted.
CATALOG_METADATA_KEY = "catalog_entry"

#: Bumped whenever :class:`RunEntry` gains or changes fields; a persisted
#: entry with an older version is rebuilt on open.  v2 added ``retired``.
CATALOG_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class RunEntry:
    """Everything the query planner needs to know about one recorded run."""

    run_id: str
    run_dir: str
    workload: str
    storage_backend: str
    started_at: float
    wall_seconds: float
    main_loop_total: int
    loop_blocks: tuple[str, ...]
    checkpoint_count: int
    #: Main-loop iterations restorable across *every* loop block (the
    #: scheduler's aligned set) — the planner's restore points.
    aligned_iterations: tuple[int, ...]
    logged_values: tuple[str, ...]
    execution_index_scheme: int
    source_digest: str
    #: True once the run's checkpoints were released through
    #: :meth:`RunCatalog.retire` — logged values and metadata remain
    #: queryable, but nothing is replayable from checkpoints any more.
    retired: bool = False

    @property
    def checkpoint_density(self) -> float:
        """Fraction of main-loop iterations that are exactly restorable."""
        if self.main_loop_total <= 0:
            return 0.0
        return len(self.aligned_iterations) / self.main_loop_total

    @property
    def job_id(self) -> str:
        """The logical job this run belongs to.

        For a distributed worker run (``<job>@<rank>``) this is the shared
        job id; for an ordinary run it is the run id itself — every run
        belongs to exactly one logical job, singleton or not.  Derived from
        the run id, so no catalog schema bump was needed.
        """
        return split_worker_run_id(self.run_id)[0]

    @property
    def worker_rank(self) -> int | None:
        """This run's rank within its data-parallel job, or None."""
        return split_worker_run_id(self.run_id)[1]

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["schema_version"] = CATALOG_SCHEMA_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunEntry":
        return cls(
            run_id=payload["run_id"],
            run_dir=payload["run_dir"],
            workload=payload["workload"],
            storage_backend=payload["storage_backend"],
            started_at=float(payload["started_at"]),
            wall_seconds=float(payload["wall_seconds"]),
            main_loop_total=int(payload["main_loop_total"]),
            loop_blocks=tuple(payload["loop_blocks"]),
            checkpoint_count=int(payload["checkpoint_count"]),
            aligned_iterations=tuple(payload["aligned_iterations"]),
            logged_values=tuple(payload["logged_values"]),
            execution_index_scheme=int(payload["execution_index_scheme"]),
            source_digest=payload["source_digest"],
            retired=bool(payload.get("retired", False)),
        )


@dataclass(frozen=True)
class JobGroup:
    """The merged catalog view of one logical data-parallel job.

    Groups the ``<job_id>@<rank>`` worker runs recorded by one distributed
    job back into a single queryable unit.  The group is *derived* — it
    holds the member :class:`RunEntry` objects, ordered by rank, and
    answers job-level questions (which ranks reported in, what every worker
    logged) without any job-level state on disk.
    """

    job_id: str
    workers: tuple[RunEntry, ...]

    @property
    def run_ids(self) -> tuple[str, ...]:
        return tuple(entry.run_id for entry in self.workers)

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(entry.worker_rank for entry in self.workers
                     if entry.worker_rank is not None)

    @property
    def world_size(self) -> int:
        """Workers the job *should* have: one past the highest rank seen."""
        ranks = self.ranks
        return (max(ranks) + 1) if ranks else len(self.workers)

    @property
    def missing_ranks(self) -> tuple[int, ...]:
        """Ranks with no cataloged run — workers that died before closing
        their manifest (or whose record never started)."""
        present = set(self.ranks)
        if not present:
            # A singleton group of ordinary (rank-less) runs has no rank
            # roster to be missing from.
            return ()
        return tuple(rank for rank in range(self.world_size)
                     if rank not in present)

    @property
    def complete(self) -> bool:
        return not self.missing_ranks

    @property
    def workload(self) -> str:
        return self.workers[0].workload if self.workers else ""

    @property
    def logged_values(self) -> tuple[str, ...]:
        """Value names every worker logged (answerable job-wide)."""
        if not self.workers:
            return ()
        common = set(self.workers[0].logged_values)
        for entry in self.workers[1:]:
            common &= set(entry.logged_values)
        return tuple(name for name in self.workers[0].logged_values
                     if name in common)

    @property
    def checkpoint_count(self) -> int:
        return sum(entry.checkpoint_count for entry in self.workers)

    def worker(self, rank: int) -> RunEntry | None:
        for entry in self.workers:
            if entry.worker_rank == rank:
                return entry
        return None

    def __len__(self) -> int:
        return len(self.workers)


def looks_like_run_dir(path: Path) -> bool:
    """Whether ``path`` plausibly holds a recorded run, on any backend."""
    if not path.is_dir():
        return False
    return ((path / "manifest.sqlite").exists()
            or (path / SHARD_MANIFEST_NAME).exists()
            or (path / "record.log").exists()
            or (path / "source").is_dir())


def _source_digest(run_dir: Path) -> str:
    """Digest of the recorded script, in the memo cache's normalization —
    directly comparable with the digest keying memo entries."""
    script = run_dir / "source" / "script.py"
    if not script.exists():
        return ""
    return source_digest(script.read_text(encoding="utf-8"))


def build_entry(run_dir: Path, store: CheckpointStore) -> RunEntry:
    """Index one run from its store metadata (and record.log as fallback)."""
    run_id = store.get_metadata("run_id") or run_dir.name
    total = store.get_metadata("main_loop_total")
    if total is None:
        recorded = store.get_metadata("iterations_run") or []
        total = (max(recorded) + 1) if recorded else 0
    loop_blocks = store.get_metadata("loop_blocks")
    logged = store.get_metadata("logged_values")
    if logged is None:
        # Runs recorded before logged_values metadata existed: derive the
        # names from the record log once, then persist them via the entry.
        seen: list[str] = []
        for record in read_log(run_dir / "record.log"):
            if record.name not in seen:
                seen.append(record.name)
        logged = seen
    environment = store.get_metadata("environment") or {}
    aligned = aligned_checkpoints(store, int(total), loop_blocks=loop_blocks)
    return RunEntry(
        run_id=run_id,
        run_dir=str(run_dir),
        workload=store.get_metadata("workload") or "",
        storage_backend=store.backend.name,
        started_at=float(environment.get("started_at")
                         or run_dir.stat().st_mtime),
        wall_seconds=float(environment.get("wall_seconds") or 0.0),
        main_loop_total=int(total),
        loop_blocks=tuple(loop_blocks or ()),
        checkpoint_count=store.checkpoint_count(),
        aligned_iterations=tuple(aligned),
        logged_values=tuple(logged),
        execution_index_scheme=int(
            store.get_metadata("execution_index_scheme", 1)),
        source_digest=_source_digest(run_dir),
    )


class RunCatalog:
    """All recorded runs under one Flor home, queryable by id and workload."""

    def __init__(self, config: FlorConfig | None = None):
        self.config = config or get_config()
        self.entries: dict[str, RunEntry] = {}

    @classmethod
    def open(cls, config: FlorConfig | None = None) -> "RunCatalog":
        """Scan the Flor home and load (or rebuild) every run's entry."""
        catalog = cls(config)
        catalog.refresh()
        return catalog

    def refresh(self) -> "RunCatalog":
        self.entries = {}
        home = Path(self.config.home)
        if not home.exists():
            return self
        for run_dir in sorted(home.iterdir()):
            if not looks_like_run_dir(run_dir):
                continue
            entry = self._load_or_build(run_dir)
            if entry is not None:
                self.entries[entry.run_id] = entry
        return self

    def _load_or_build(self, run_dir: Path) -> RunEntry | None:
        store = CheckpointStore.for_config(run_dir, self.config)
        try:
            persisted = store.get_metadata(CATALOG_METADATA_KEY)
            if persisted is not None and self._fresh(persisted, store):
                return RunEntry.from_dict(persisted)
            entry = build_entry(run_dir, store)
            store.set_metadata(CATALOG_METADATA_KEY, entry.to_dict())
            return entry
        finally:
            store.close()

    @staticmethod
    def _fresh(persisted: dict, store: CheckpointStore) -> bool:
        """Whether a persisted entry still describes the store behind it."""
        if persisted.get("schema_version") != CATALOG_SCHEMA_VERSION:
            return False
        try:
            return int(persisted["checkpoint_count"]) == \
                store.checkpoint_count()
        except (KeyError, TypeError, ValueError):
            return False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def retire(self, run_id: str, *, collect: bool = True) -> PruneReport:
        """Release a run's checkpoint payloads but keep its catalog entry.

        The manifest rows are deleted (manifest-first), the entry is
        re-persisted with ``retired=True`` and its checkpoint fields
        zeroed — workload, logged values and timing stay queryable — and
        a GC pass (``collect=True``) then reclaims every payload blob no
        surviving run references.
        """
        entry = self.entries.get(run_id)
        if entry is None:
            from ..exceptions import QueryError
            raise QueryError(
                f"run {run_id!r} not in catalog; cataloged runs: "
                f"{', '.join(sorted(self.entries)) or '-'}")
        store = CheckpointStore.for_config(Path(entry.run_dir), self.config)
        try:
            report = retire_run(store)
            updated = replace(entry, checkpoint_count=0,
                              aligned_iterations=(), retired=True)
            store.set_metadata(CATALOG_METADATA_KEY, updated.to_dict())
        finally:
            store.close()
        if collect:
            # Grace protects concurrently recording sessions' in-flight
            # blobs; what this retirement released sweeps via hints —
            # time-scoped to the retire instant, so a concurrent writer
            # re-adding a released digest keeps its blob.
            collect_garbage(self.config.home,
                            grace_seconds=DEFAULT_GC_GRACE_SECONDS,
                            release_hints=report.released_digests,
                            hints_released_at=report.released_at)
        self.entries[run_id] = updated
        return report

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def get(self, run_id: str) -> RunEntry | None:
        return self.entries.get(run_id)

    def select(self, runs: str | Iterable[str] | None = None,
               workload: str | None = None,
               values: Iterable[str] | None = None) -> list[RunEntry]:
        """Entries matching the filters, ordered by recording time.

        ``runs`` is a run id, an iterable of run ids, or None for all runs
        (a single id may also be a prefix, so the human-chosen slug selects
        without the timestamp suffix).  ``workload`` filters on the recorded
        workload name; ``values`` keeps only runs that logged every named
        value at record time (useful to find runs a query can answer
        without replay).
        """
        if runs is None:
            selected = list(self.entries.values())
        elif isinstance(runs, str):
            selected = [entry for run_id, entry in self.entries.items()
                        if run_id == runs or run_id.startswith(runs)]
        else:
            wanted = list(runs)
            missing = [run_id for run_id in wanted
                       if run_id not in self.entries]
            if missing:
                from ..exceptions import QueryError
                raise QueryError(
                    f"run(s) not in catalog: {', '.join(missing)}; "
                    f"cataloged runs: {', '.join(sorted(self.entries)) or '-'}")
            selected = [self.entries[run_id] for run_id in wanted]
        if workload is not None:
            selected = [entry for entry in selected
                        if entry.workload == workload]
        if values is not None:
            names = set(values)
            selected = [entry for entry in selected
                        if names <= set(entry.logged_values)]
        return sorted(selected, key=lambda entry: (entry.started_at,
                                                   entry.run_id))

    def latest(self, count: int = 1,
               workload: str | None = None) -> list[RunEntry]:
        """The most recently recorded ``count`` runs, oldest first."""
        ordered = self.select(workload=workload)
        return ordered[-count:] if count > 0 else []

    # ------------------------------------------------------------------ #
    # Merged job view (distributed record)
    # ------------------------------------------------------------------ #
    def jobs(self, workload: str | None = None) -> list[JobGroup]:
        """Every logical job under the home, worker runs merged by job id.

        A distributed job's ``<job_id>@<rank>`` runs collapse into one
        :class:`JobGroup`; an ordinary run is a singleton group whose job
        id is its run id.  Ordered by the earliest member's recording
        time, workers ordered by rank within each group.
        """
        grouped: dict[str, list[RunEntry]] = {}
        for entry in self.select(workload=workload):
            grouped.setdefault(entry.job_id, []).append(entry)
        groups = [
            JobGroup(job_id=job_id, workers=tuple(
                sorted(members,
                       key=lambda e: (e.worker_rank is None,
                                      e.worker_rank or 0, e.run_id))))
            for job_id, members in grouped.items()
        ]
        return sorted(groups, key=lambda group: (
            min(entry.started_at for entry in group.workers),
            group.job_id))

    def job(self, job_id: str) -> JobGroup:
        """The merged view of one logical job (exact id or unique prefix)."""
        grouped: dict[str, list[RunEntry]] = {}
        for entry in self.entries.values():
            grouped.setdefault(entry.job_id, []).append(entry)
        members = grouped.get(job_id)
        if members is None:
            matches = [jid for jid in grouped if jid.startswith(job_id)]
            if len(matches) > 1:
                from ..exceptions import QueryError
                raise QueryError(
                    f"job id prefix {job_id!r} is ambiguous: "
                    f"{', '.join(sorted(matches))}")
            if matches:
                job_id, members = matches[0], grouped[matches[0]]
        if members is None:
            from ..exceptions import QueryError
            raise QueryError(
                f"job {job_id!r} not in catalog; cataloged jobs: "
                f"{', '.join(sorted(grouped)) or '-'}")
        return JobGroup(job_id=job_id, workers=tuple(
            sorted(members, key=lambda e: (e.worker_rank is None,
                                           e.worker_rank or 0, e.run_id))))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[RunEntry]:
        return iter(self.select())

    def __repr__(self) -> str:
        return f"RunCatalog({len(self.entries)} runs @ {self.config.home})"
