"""Columnar results of hindsight queries.

A query answers in cells — ``(run, iteration, name) -> value`` — and the
natural shapes to consume them in are a flat row list (feed it to pandas,
csv, or a plotting loop) and pivoted dictionaries (compare runs at a
glance).  :class:`QueryResult` provides both, plus :class:`QueryStats`:
the resolution accounting (how many cells came from logs, memo, replay)
and the replay-job ledger that makes the planner's work inspectable and
testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["QueryRow", "ReplayJobRecord", "QueryStats", "QueryResult"]


@dataclass(frozen=True)
class QueryRow:
    """One resolved cell."""

    run_id: str
    iteration: int
    name: str
    value: object
    #: Where the value came from: ``"logged"`` | ``"memo"`` |
    #: ``"analysis"`` (a PURE_LOGGED probe evaluated from the record log)
    #: | ``"replay"``.
    source: str


@dataclass(frozen=True)
class ReplayJobRecord:
    """One replay job the planner scheduled (the accounting trail)."""

    run_id: str
    start: int
    stop: int
    restore_index: int | None
    estimated_seconds: float
    wall_seconds: float = 0.0

    @property
    def iterations(self) -> int:
        return max(0, self.stop - self.start)


@dataclass
class QueryStats:
    """Resolution and execution accounting of one query."""

    runs: int = 0
    values: tuple[str, ...] = ()
    requested_cells: int = 0
    resolved_logged: int = 0
    resolved_memo: int = 0
    #: Cells evaluated from the record log by the purity analysis
    #: (``PURE_LOGGED`` probes) — resolved with zero replay jobs.
    analysis_resolved: int = 0
    resolved_replay: int = 0
    missing_cells: int = 0
    replay_jobs: list[ReplayJobRecord] = field(default_factory=list)
    memo_cells_written: int = 0
    planner_seconds: float = 0.0
    replay_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def replay_job_count(self) -> int:
        return len(self.replay_jobs)

    @property
    def replayed_iterations(self) -> int:
        return sum(job.iterations for job in self.replay_jobs)

    def summary(self) -> str:
        return (f"{self.requested_cells} cells over {self.runs} run(s): "
                f"{self.resolved_logged} logged, {self.resolved_memo} "
                f"memoized, {self.analysis_resolved} analysis-resolved, "
                f"{self.resolved_replay} replayed via "
                f"{self.replay_job_count} job(s) "
                f"({self.replayed_iterations} iterations), "
                f"{self.missing_cells} missing; "
                f"{self.total_seconds:.3f}s total")


class QueryResult:
    """The answer to one hindsight query: rows plus accounting."""

    def __init__(self, rows: list[QueryRow], stats: QueryStats):
        self.rows = rows
        self.stats = stats

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def values(self, name: str, run_id: str | None = None) -> list:
        """Values of ``name`` in (run, iteration) order."""
        return [row.value for row in self.rows
                if row.name == name
                and (run_id is None or row.run_id == run_id)]

    def pivot(self, name: str) -> dict[str, dict[int, object]]:
        """``{run_id: {iteration: value}}`` for one value name."""
        table: dict[str, dict[int, object]] = {}
        for row in self.rows:
            if row.name == name:
                table.setdefault(row.run_id, {})[row.iteration] = row.value
        return table

    def by_iteration(self, name: str) -> dict[int, dict[str, object]]:
        """``{iteration: {run_id: value}}`` — compare runs epoch by epoch."""
        table: dict[int, dict[str, object]] = {}
        for row in self.rows:
            if row.name == name:
                table.setdefault(row.iteration, {})[row.run_id] = row.value
        return table

    def to_records(self) -> list[dict]:
        """Plain dict rows (pandas ``DataFrame(result.to_records())``)."""
        return [{"run_id": row.run_id, "iteration": row.iteration,
                 "name": row.name, "value": row.value, "source": row.source}
                for row in self.rows]

    def runs(self) -> list[str]:
        seen: list[str] = []
        for row in self.rows:
            if row.run_id not in seen:
                seen.append(row.run_id)
        return seen

    def names(self) -> list[str]:
        seen: list[str] = []
        for row in self.rows:
            if row.name not in seen:
                seen.append(row.name)
        return seen

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[QueryRow]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult({self.stats.summary()})"
