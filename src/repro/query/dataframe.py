"""Columnar results of hindsight queries.

A query answers in cells — ``(run, iteration, name) -> value`` — and the
natural shapes to consume them in are a flat row list (feed it to pandas,
csv, or a plotting loop) and pivoted dictionaries (compare runs at a
glance).  :class:`QueryResult` provides both, plus :class:`QueryStats`:
the resolution accounting (how many cells came from logs, memo, replay)
and the replay-job ledger that makes the planner's work inspectable and
testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["QueryRow", "ReplayJobRecord", "QueryStats", "QueryResult"]


@dataclass(frozen=True)
class QueryRow:
    """One resolved cell."""

    run_id: str
    iteration: int
    name: str
    value: object
    #: Where the value came from: ``"logged"`` | ``"memo"`` |
    #: ``"analysis"`` (a PURE_LOGGED probe evaluated from the record log)
    #: | ``"replay"``.
    source: str


@dataclass(frozen=True)
class ReplayJobRecord:
    """One replay job the planner scheduled (the accounting trail)."""

    run_id: str
    start: int
    stop: int
    restore_index: int | None
    estimated_seconds: float
    wall_seconds: float = 0.0

    @property
    def iterations(self) -> int:
        return max(0, self.stop - self.start)

    def to_dict(self) -> dict:
        return {"run_id": self.run_id, "start": self.start,
                "stop": self.stop, "restore_index": self.restore_index,
                "estimated_seconds": self.estimated_seconds,
                "wall_seconds": self.wall_seconds}

    @classmethod
    def from_dict(cls, payload: dict) -> "ReplayJobRecord":
        restore = payload.get("restore_index")
        return cls(run_id=payload["run_id"], start=int(payload["start"]),
                   stop=int(payload["stop"]),
                   restore_index=(int(restore)
                                  if restore is not None else None),
                   estimated_seconds=float(
                       payload.get("estimated_seconds", 0.0)),
                   wall_seconds=float(payload.get("wall_seconds", 0.0)))


@dataclass
class QueryStats:
    """Resolution and execution accounting of one query."""

    runs: int = 0
    values: tuple[str, ...] = ()
    requested_cells: int = 0
    resolved_logged: int = 0
    resolved_memo: int = 0
    #: Cells evaluated from the record log by the purity analysis
    #: (``PURE_LOGGED`` probes) — resolved with zero replay jobs.
    analysis_resolved: int = 0
    resolved_replay: int = 0
    missing_cells: int = 0
    replay_jobs: list[ReplayJobRecord] = field(default_factory=list)
    memo_cells_written: int = 0
    planner_seconds: float = 0.0
    replay_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def replay_job_count(self) -> int:
        return len(self.replay_jobs)

    @property
    def replayed_iterations(self) -> int:
        return sum(job.iterations for job in self.replay_jobs)

    def summary(self) -> str:
        return (f"{self.requested_cells} cells over {self.runs} run(s): "
                f"{self.resolved_logged} logged, {self.resolved_memo} "
                f"memoized, {self.analysis_resolved} analysis-resolved, "
                f"{self.resolved_replay} replayed via "
                f"{self.replay_job_count} job(s) "
                f"({self.replayed_iterations} iterations), "
                f"{self.missing_cells} missing; "
                f"{self.total_seconds:.3f}s total")

    def to_payload(self) -> dict:
        """Plain-dict form (JSON-ready, telemetry-document friendly)."""
        return {
            "runs": self.runs,
            "values": list(self.values),
            "requested_cells": self.requested_cells,
            "resolved_logged": self.resolved_logged,
            "resolved_memo": self.resolved_memo,
            "analysis_resolved": self.analysis_resolved,
            "resolved_replay": self.resolved_replay,
            "missing_cells": self.missing_cells,
            "memo_cells_written": self.memo_cells_written,
            "planner_seconds": self.planner_seconds,
            "replay_seconds": self.replay_seconds,
            "total_seconds": self.total_seconds,
            "replay_jobs": [job.to_dict() for job in self.replay_jobs],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryStats":
        """Inverse of :meth:`to_payload`."""
        return cls(
            runs=int(payload.get("runs", 0)),
            values=tuple(payload.get("values", ())),
            requested_cells=int(payload.get("requested_cells", 0)),
            resolved_logged=int(payload.get("resolved_logged", 0)),
            resolved_memo=int(payload.get("resolved_memo", 0)),
            analysis_resolved=int(payload.get("analysis_resolved", 0)),
            resolved_replay=int(payload.get("resolved_replay", 0)),
            missing_cells=int(payload.get("missing_cells", 0)),
            memo_cells_written=int(payload.get("memo_cells_written", 0)),
            planner_seconds=float(payload.get("planner_seconds", 0.0)),
            replay_seconds=float(payload.get("replay_seconds", 0.0)),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            replay_jobs=[ReplayJobRecord.from_dict(row)
                         for row in payload.get("replay_jobs", [])])


class QueryResult:
    """The answer to one hindsight query: rows plus accounting."""

    def __init__(self, rows: list[QueryRow], stats: QueryStats):
        self.rows = rows
        self.stats = stats

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def values(self, name: str, run_id: str | None = None) -> list:
        """Values of ``name`` in (run, iteration) order."""
        return [row.value for row in self.rows
                if row.name == name
                and (run_id is None or row.run_id == run_id)]

    def pivot(self, name: str) -> dict[str, dict[int, object]]:
        """``{run_id: {iteration: value}}`` for one value name."""
        table: dict[str, dict[int, object]] = {}
        for row in self.rows:
            if row.name == name:
                table.setdefault(row.run_id, {})[row.iteration] = row.value
        return table

    def by_iteration(self, name: str) -> dict[int, dict[str, object]]:
        """``{iteration: {run_id: value}}`` — compare runs epoch by epoch."""
        table: dict[int, dict[str, object]] = {}
        for row in self.rows:
            if row.name == name:
                table.setdefault(row.iteration, {})[row.run_id] = row.value
        return table

    def to_records(self) -> list[dict]:
        """Plain dict rows (pandas ``DataFrame(result.to_records())``)."""
        return [{"run_id": row.run_id, "iteration": row.iteration,
                 "name": row.name, "value": row.value, "source": row.source}
                for row in self.rows]

    def runs(self) -> list[str]:
        seen: list[str] = []
        for row in self.rows:
            if row.run_id not in seen:
                seen.append(row.run_id)
        return seen

    def names(self) -> list[str]:
        seen: list[str] = []
        for row in self.rows:
            if row.name not in seen:
                seen.append(row.name)
        return seen

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[QueryRow]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult({self.stats.summary()})"
