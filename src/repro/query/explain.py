"""``repro.explain(...)``: the query planner's decisions, without running them.

The planner is a cost model, and cost models earn trust by being
inspectable: before paying for a replay, a user can ask where each
requested cell *would* come from and what the chosen replay spans are
priced at.  ``explain`` runs exactly the planning stage :func:`repro.query`
runs — run selection, probe-safety gating, per-cell resolution, span
coalescing — and returns a structured :class:`ExplainReport` instead of
executing the plan.  Per-source counts therefore match the
:class:`~repro.query.dataframe.QueryStats` the real query would report
(replay-planned cells resolve as ``replay`` when their spans run; cells no
span can produce are ``missing``).

Renderers follow the :class:`~repro.analysis.diagnostics.DiagnosticReport`
pattern: a human text table, a stable JSON document, and
``to_payload``/``from_payload`` for persistence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .. import telemetry
from ..config import FlorConfig, get_config
from .api import prepare_query
from .catalog import RunCatalog
from .planner import RunPlan

__all__ = ["SpanChoice", "RunExplain", "ExplainReport", "explain"]

#: Version of the explain JSON document.
EXPLAIN_SCHEMA = 1


@dataclass(frozen=True)
class SpanChoice:
    """One replay span the planner priced and chose for a run."""

    start: int
    stop: int
    #: Aligned checkpoint restored before the span (None: recompute from 0).
    restore_index: int | None
    estimated_seconds: float

    @property
    def iterations(self) -> int:
        return max(0, self.stop - self.start)

    def render(self) -> str:
        restore = (f"restore@{self.restore_index}"
                   if self.restore_index is not None else "from-scratch")
        return (f"span [{self.start}, {self.stop}) {restore} "
                f"est {self.estimated_seconds:.3f}s")

    def to_dict(self) -> dict:
        return {"start": self.start, "stop": self.stop,
                "restore_index": self.restore_index,
                "estimated_seconds": self.estimated_seconds}

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanChoice":
        restore = payload.get("restore_index")
        return cls(start=int(payload["start"]), stop=int(payload["stop"]),
                   restore_index=(int(restore)
                                  if restore is not None else None),
                   estimated_seconds=float(
                       payload.get("estimated_seconds", 0.0)))


@dataclass
class RunExplain:
    """Per-run half of an explain report: cell resolution plus span pricing."""

    run_id: str
    requested_cells: int = 0
    logged: int = 0
    memo: int = 0
    analysis: int = 0
    #: Cells the chosen spans will produce when the plan executes.
    replay: int = 0
    #: Cells no source can answer (replay impossible or analysis-only).
    missing: int = 0
    spans: list[SpanChoice] = field(default_factory=list)

    @property
    def estimated_replay_seconds(self) -> float:
        return sum(span.estimated_seconds for span in self.spans)

    def sources(self) -> dict[str, int]:
        """Per-source cell counts, same keys as ``QueryStats`` reports."""
        return {"logged": self.logged, "memo": self.memo,
                "analysis": self.analysis, "replay": self.replay,
                "missing": self.missing}

    def render(self) -> list[str]:
        lines = [f"run {self.run_id}: {self.requested_cells} cell(s) — "
                 f"{self.logged} logged, {self.memo} memo, "
                 f"{self.analysis} analysis, {self.replay} replay, "
                 f"{self.missing} missing"]
        for span in self.spans:
            lines.append(f"  {span.render()}")
        return lines

    def to_dict(self) -> dict:
        return {"run_id": self.run_id,
                "requested_cells": self.requested_cells,
                "sources": self.sources(),
                "estimated_replay_seconds": self.estimated_replay_seconds,
                "spans": [span.to_dict() for span in self.spans]}

    @classmethod
    def from_dict(cls, payload: dict) -> "RunExplain":
        sources = payload.get("sources") or {}
        return cls(run_id=payload["run_id"],
                   requested_cells=int(payload.get("requested_cells", 0)),
                   logged=int(sources.get("logged", 0)),
                   memo=int(sources.get("memo", 0)),
                   analysis=int(sources.get("analysis", 0)),
                   replay=int(sources.get("replay", 0)),
                   missing=int(sources.get("missing", 0)),
                   spans=[SpanChoice.from_dict(row)
                          for row in payload.get("spans", [])])


@dataclass
class ExplainReport:
    """The full explain document: per-run resolution plus span pricing."""

    values: tuple[str, ...] = ()
    runs: list[RunExplain] = field(default_factory=list)
    planner_seconds: float = 0.0
    planner_mode: str = "cost"

    # ------------------------------------------------------------------ #
    # Aggregates (the numbers QueryStats would report after execution)
    # ------------------------------------------------------------------ #
    @property
    def requested_cells(self) -> int:
        return sum(run.requested_cells for run in self.runs)

    def count(self, source: str) -> int:
        return sum(run.sources().get(source, 0) for run in self.runs)

    def sources(self) -> dict[str, int]:
        return {key: self.count(key)
                for key in ("logged", "memo", "analysis", "replay",
                            "missing")}

    @property
    def replay_span_count(self) -> int:
        return sum(len(run.spans) for run in self.runs)

    @property
    def estimated_replay_seconds(self) -> float:
        return sum(run.estimated_replay_seconds for run in self.runs)

    def run(self, run_id: str) -> RunExplain:
        for entry in self.runs:
            if entry.run_id == run_id:
                return entry
        raise KeyError(f"run {run_id!r} not in this explain report")

    # ------------------------------------------------------------------ #
    # Renderers
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        counts = self.sources()
        return (f"{self.requested_cells} cell(s) over {len(self.runs)} "
                f"run(s): {counts['logged']} logged, {counts['memo']} memo, "
                f"{counts['analysis']} analysis, {counts['replay']} replay "
                f"via {self.replay_span_count} span(s) "
                f"(est {self.estimated_replay_seconds:.3f}s), "
                f"{counts['missing']} missing")

    def render_text(self) -> str:
        lines = [f"explain values={','.join(self.values)} "
                 f"mode={self.planner_mode} "
                 f"planner={self.planner_seconds:.3f}s"]
        for run in self.runs:
            lines.extend(run.render())
        lines.append(self.summary())
        return "\n".join(lines)

    def to_payload(self) -> dict:
        return {"values": list(self.values),
                "planner_seconds": self.planner_seconds,
                "planner_mode": self.planner_mode,
                "runs": [run.to_dict() for run in self.runs]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps({
            "schema": EXPLAIN_SCHEMA,
            "summary": self.sources(),
            **self.to_payload(),
        }, indent=indent, sort_keys=False)

    @classmethod
    def from_payload(cls, payload: dict) -> "ExplainReport":
        return cls(values=tuple(payload.get("values", ())),
                   planner_seconds=float(
                       payload.get("planner_seconds", 0.0)),
                   planner_mode=payload.get("planner_mode", "cost"),
                   runs=[RunExplain.from_dict(row)
                         for row in payload.get("runs", [])])

    def __repr__(self) -> str:
        return f"ExplainReport({self.summary()})"


def _explain_run(run_plan: RunPlan) -> RunExplain:
    """Fold one run's plan into resolution counts and priced spans."""
    explained = RunExplain(
        run_id=run_plan.run_id,
        requested_cells=(len(run_plan.names)
                         * len(run_plan.wanted_iterations)),
        logged=run_plan.count("logged"),
        memo=run_plan.count("memo"),
        analysis=run_plan.count("analysis"),
        spans=[SpanChoice(start=span.start, stop=span.stop,
                          restore_index=span.restore_index,
                          estimated_seconds=span.estimated_seconds)
               for span in run_plan.spans])
    # Mirror execution's verdict per unresolved cell: a replay span that
    # passes over the cell's iteration logs every probed value — except
    # analysis-only names, which exist only as logged-name expressions and
    # are never live in a replayed script.
    covered: set[int] = set()
    for span in run_plan.spans:
        covered.update(span.iterations())
    for name, iteration in run_plan.unresolved_cells:
        if iteration in covered \
                and name not in run_plan.analysis_only_names:
            explained.replay += 1
        else:
            explained.missing += 1
    return explained


def explain(values: str | Sequence[str],
            runs: str | Iterable[str] | None = None,
            iterations: int | slice | Iterable[int] | None = None,
            source: str | Path | None = None,
            workload: str | None = None,
            config: FlorConfig | None = None,
            workers: int | None = None,
            memoize: bool | None = None,
            catalog: RunCatalog | None = None) -> ExplainReport:
    """Plan a hindsight query and report the decisions without executing.

    Accepts exactly the arguments of :func:`repro.query` and runs the same
    planning stage (run selection, probe-safety gate, cost-based per-cell
    resolution, span coalescing), then returns the plan as a structured
    report instead of scheduling replay jobs.  Nothing is replayed, no
    memo entry is written, and the report's per-source counts predict the
    ``QueryStats`` the equivalent query would produce.
    """
    config = config or get_config()
    telemetry.enable_from_config(config)
    with telemetry.get_tracer().span("query.explain"):
        prepared = prepare_query(values, runs, iterations, source,
                                 workload, config, workers, memoize,
                                 catalog)
    try:
        return ExplainReport(
            values=prepared.names,
            runs=[_explain_run(run_plan)
                  for run_plan in prepared.plan.runs],
            planner_seconds=prepared.planner_seconds,
            planner_mode=config.query_planner)
    finally:
        prepared.close()
