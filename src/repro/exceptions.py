"""Exception hierarchy for the Flor reproduction.

Every error raised by this package derives from :class:`FlorError` so that
callers can catch package failures without also swallowing programming
errors (``TypeError``, ``KeyError``, ...) from their own code.
"""

from __future__ import annotations


class FlorError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class RecordError(FlorError):
    """Raised when the record phase cannot capture required state."""


class ReplayError(FlorError):
    """Raised when the replay phase cannot restore or recompute state."""


class CheckpointNotFoundError(ReplayError):
    """Raised when a memoized Loop End Checkpoint is missing on replay."""

    def __init__(self, run_id: str, block_id: str, execution_index: int):
        self.run_id = run_id
        self.block_id = block_id
        self.execution_index = execution_index
        super().__init__(
            f"no checkpoint for run={run_id!r} block={block_id!r} "
            f"execution={execution_index}"
        )


class ReplayAnomalyError(ReplayError):
    """Raised when deferred correctness checks detect a record/replay mismatch.

    The paper (Section 5.2.2) *warns* the user rather than aborting; Flor's
    deferred checker in this reproduction warns by default and raises this
    error only when ``strict`` checking is requested.
    """


class ReplaySafetyError(ReplayError):
    """Raised when static analysis refuses a replay or query.

    Carries the :class:`~repro.analysis.diagnostics.DiagnosticReport` that
    motivated the refusal (``MUTATING`` probes, RPL001) so callers can
    render the offending lines.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        if report is not None and len(report):
            message = f"{message}\n{report.render_text()}"
        super().__init__(message)


class ReplaySafetyWarning(UserWarning):
    """Emitted at record open when the determinism lint finds hazards.

    A :class:`UserWarning` (not a :class:`FlorError`) because the default
    posture is to record anyway — the ``strict_analysis`` config knob
    upgrades these findings to a :class:`RecordError`.
    """


class InstrumentationError(FlorError):
    """Raised when the AST instrumentation pass cannot transform a script."""


class SideEffectAnalysisError(FlorError):
    """Raised when static side-effect analysis encounters malformed input."""


class UninstrumentableLoopError(SideEffectAnalysisError):
    """Raised (internally) when a loop activates Rule 5 or Rule 0 of Table 1.

    Such loops are left intact — they are fully re-executed on replay — so
    this exception is usually caught by the instrumenter rather than
    propagated to users.
    """

    def __init__(self, reason: str, lineno: int | None = None):
        self.reason = reason
        self.lineno = lineno
        where = f" at line {lineno}" if lineno is not None else ""
        super().__init__(f"loop cannot be instrumented{where}: {reason}")


class StorageError(FlorError):
    """Raised when the checkpoint store cannot read or write a payload."""


class SerializationError(StorageError):
    """Raised when an object cannot be serialized into a checkpoint."""


class ConfigError(FlorError):
    """Raised for invalid configuration values (e.g. negative tolerance)."""


class QueryError(FlorError):
    """Raised when a hindsight query cannot be planned or executed.

    Covers an empty run selection, a value that can be neither read nor
    recomputed (no probe source provided), and replay-job failures inside
    the query executor.
    """


class ServiceError(FlorError):
    """Raised for hindsight-query-service failures (client or server side).

    Carries the wire-protocol error ``code`` (see ``docs/api.md``) so
    callers can branch on the contract rather than on message text.
    """

    def __init__(self, message: str, code: str = "INTERNAL"):
        self.code = code
        super().__init__(message)


class ServiceBusy(ServiceError):
    """The daemon's admission queue is full; retry after ``retry_after``.

    A typed rejection, not a hang: the server answers immediately with a
    ``Retry-After``-style hint (seconds) derived from its measured request
    throughput, and :class:`~repro.service.client.ServiceClient` honours it
    in its retry/backoff loop before surfacing this error.
    """

    def __init__(self, message: str, retry_after: float = 0.1):
        self.retry_after = float(retry_after)
        super().__init__(message, code="SERVICE_BUSY")


class SimulationError(FlorError):
    """Raised by the paper-scale evaluation simulator for invalid setups."""


class WorkloadError(FlorError):
    """Raised when a workload name is unknown or a workload is misconfigured."""
